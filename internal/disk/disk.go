// Package disk simulates a paged secondary-storage device and counts
// I/O operations the way the paper's performance model does: every page
// access is classified as either random (requires a seek: the target is
// not the page immediately following the previously accessed page) or
// sequential (the target directly follows the last access in the same
// file). Section 4.1: "We measured cost as the number of I/O operations
// performed by an algorithm, distinguishing between the higher cost of
// random access and the lower cost of sequential access."
//
// All data really moves: pages are stored and returned byte-for-byte,
// so the join algorithms built on top are testable for correctness, not
// just for cost.
package disk

import (
	"fmt"

	"vtjoin/internal/page"
)

// FileID names a file (a relation, a partition, a sort run, a tuple
// cache, ...) on the simulated device.
type FileID int32

// Counters accumulates the four access classes of the cost model.
type Counters struct {
	RandReads  int64
	SeqReads   int64
	RandWrites int64
	SeqWrites  int64
}

// Add returns the sum of two counter sets.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		RandReads:  c.RandReads + o.RandReads,
		SeqReads:   c.SeqReads + o.SeqReads,
		RandWrites: c.RandWrites + o.RandWrites,
		SeqWrites:  c.SeqWrites + o.SeqWrites,
	}
}

// Sub returns c - o, used to measure a phase between two snapshots.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		RandReads:  c.RandReads - o.RandReads,
		SeqReads:   c.SeqReads - o.SeqReads,
		RandWrites: c.RandWrites - o.RandWrites,
		SeqWrites:  c.SeqWrites - o.SeqWrites,
	}
}

// Random and Sequential return the totals per access class.
func (c Counters) Random() int64     { return c.RandReads + c.RandWrites }
func (c Counters) Sequential() int64 { return c.SeqReads + c.SeqWrites }

// Total returns the total number of page accesses.
func (c Counters) Total() int64 { return c.Random() + c.Sequential() }

// String renders the counters compactly.
func (c Counters) String() string {
	return fmt.Sprintf("rand(r=%d w=%d) seq(r=%d w=%d)",
		c.RandReads, c.RandWrites, c.SeqReads, c.SeqWrites)
}

// Disk is a simulated paged device. It is not safe for concurrent use;
// the evaluation algorithms are single-threaded, as in the paper.
//
// Sequentiality is tracked per file: an access to page i of file f is
// sequential iff the previous access to f touched page i-1. This
// matches the paper's accounting, which charges a partition, run, or
// tuple-cache read "a single random seek followed by i-1 sequential
// reads" even though different streams interleave during evaluation
// (physically: each file occupies consecutive pages and the device has
// a track buffer per active stream).
type Disk struct {
	pageSize int
	store    store
	nextID   FileID
	counters Counters

	// last[f] is the page index of the most recent access to file f.
	last map[FileID]int
}

// New creates a device with the given page size, backed by process
// memory (the configuration of the paper's simulations).
func New(pageSize int) *Disk {
	if pageSize < page.MinSize {
		panic(fmt.Sprintf("disk: page size %d below minimum %d", pageSize, page.MinSize))
	}
	return &Disk{
		pageSize: pageSize,
		store:    newMemStore(pageSize),
		nextID:   1,
		last:     make(map[FileID]int),
	}
}

// NewFileBacked creates a device whose pages persist as real files
// under dir (one file per FileID, pages back to back). The cost
// accounting is identical to the in-memory device: classification
// lives above the backend.
func NewFileBacked(pageSize int, dir string) (*Disk, error) {
	if pageSize < page.MinSize {
		return nil, fmt.Errorf("disk: page size %d below minimum %d", pageSize, page.MinSize)
	}
	st, err := newFileStore(pageSize, dir)
	if err != nil {
		return nil, err
	}
	return &Disk{
		pageSize: pageSize,
		store:    st,
		nextID:   1,
		last:     make(map[FileID]int),
	}, nil
}

// Close releases the device's resources (open files, memory).
func (d *Disk) Close() error { return d.store.close() }

// PageSize returns the device's page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// Create allocates a new empty file and returns its ID.
func (d *Disk) Create() FileID {
	id := d.nextID
	d.nextID++
	if err := d.store.create(id); err != nil {
		// IDs are allocated monotonically, so creation of a fresh id can
		// only fail on backend I/O errors; surface them loudly.
		panic(err)
	}
	return id
}

// Remove deletes a file, freeing its pages. Removing an unknown file is
// an error.
func (d *Disk) Remove(f FileID) error {
	if err := d.store.remove(f); err != nil {
		return err
	}
	delete(d.last, f)
	return nil
}

// NumPages returns the number of pages in file f, or an error if f does
// not exist.
func (d *Disk) NumPages(f FileID) (int, error) {
	return d.store.numPages(f)
}

// touch classifies an access to (f, idx) and advances file f's stream
// position.
func (d *Disk) touch(f FileID, idx int, write bool) {
	prev, seen := d.last[f]
	sequential := seen && idx == prev+1
	switch {
	case write && sequential:
		d.counters.SeqWrites++
	case write:
		d.counters.RandWrites++
	case sequential:
		d.counters.SeqReads++
	default:
		d.counters.RandReads++
	}
	d.last[f] = idx
}

// Read copies page idx of file f into dst. dst must match the device
// page size.
func (d *Disk) Read(f FileID, idx int, dst *page.Page) error {
	if dst.Size() != d.pageSize {
		return fmt.Errorf("disk: read: destination page is %d bytes, device uses %d", dst.Size(), d.pageSize)
	}
	if err := d.store.read(f, idx, dst.Bytes()); err != nil {
		return err
	}
	d.touch(f, idx, false)
	return nil
}

// Write stores the page image at index idx of file f. idx may be at
// most the current page count (writing at the count appends).
func (d *Disk) Write(f FileID, idx int, src *page.Page) error {
	if src.Size() != d.pageSize {
		return fmt.Errorf("disk: write: source page is %d bytes, device uses %d", src.Size(), d.pageSize)
	}
	if err := d.store.write(f, idx, src.Bytes()); err != nil {
		return err
	}
	d.touch(f, idx, true)
	return nil
}

// Append stores the page image after the last page of file f and
// returns its index.
func (d *Disk) Append(f FileID, src *page.Page) (int, error) {
	n, err := d.NumPages(f)
	if err != nil {
		return 0, err
	}
	if err := d.Write(f, n, src); err != nil {
		return 0, err
	}
	return n, nil
}

// Truncate discards the contents of file f, keeping the file.
func (d *Disk) Truncate(f FileID) error {
	return d.store.truncate(f)
}

// Counters returns a snapshot of the access counters.
func (d *Disk) Counters() Counters { return d.counters }

// ResetCounters zeroes the access counters and forgets all stream
// positions (the next access to any file is random). Used to exclude
// setup work — e.g. loading the base relations — from measured costs,
// as the paper's simulations do.
func (d *Disk) ResetCounters() {
	d.counters = Counters{}
	d.last = make(map[FileID]int)
}
