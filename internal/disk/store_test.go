package disk

import (
	"testing"

	"vtjoin/internal/page"
)

// backends builds one Disk per storage backend so the shared behaviour
// suite runs against both.
func backends(t *testing.T) map[string]*Disk {
	t.Helper()
	fb, err := NewFileBacked(page.DefaultSize, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Disk{
		"memory": New(page.DefaultSize),
		"file":   fb,
	}
}

func TestBackendsBehaveIdentically(t *testing.T) {
	for name, d := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer d.Close()
			f := d.Create()
			// Write three pages, overwrite the middle one, read back.
			mk := func(payload string) *page.Page {
				p := page.MustNew(d.PageSize())
				if !p.Insert([]byte(payload)) {
					t.Fatal("payload does not fit")
				}
				return p
			}
			for _, s := range []string{"one", "two", "three"} {
				if _, err := d.Append(f, mk(s)); err != nil {
					t.Fatal(err)
				}
			}
			if err := d.Write(f, 1, mk("TWO")); err != nil {
				t.Fatal(err)
			}
			n, err := d.NumPages(f)
			if err != nil || n != 3 {
				t.Fatalf("pages = %d, %v", n, err)
			}
			want := []string{"one", "TWO", "three"}
			dst := page.MustNew(d.PageSize())
			for i, w := range want {
				if err := d.Read(f, i, dst); err != nil {
					t.Fatal(err)
				}
				if got := string(mustRecord(t, dst, 0)); got != w {
					t.Fatalf("page %d = %q, want %q", i, got, w)
				}
			}
			// Truncate and reuse.
			if err := d.Truncate(f); err != nil {
				t.Fatal(err)
			}
			if n, _ := d.NumPages(f); n != 0 {
				t.Fatalf("pages after truncate = %d", n)
			}
			if _, err := d.Append(f, mk("fresh")); err != nil {
				t.Fatal(err)
			}
			// Error cases behave the same.
			if err := d.Read(f, 5, dst); err == nil {
				t.Fatal("read past EOF accepted")
			}
			if err := d.Read(99, 0, dst); err == nil {
				t.Fatal("unknown file accepted")
			}
			if err := d.Remove(f); err != nil {
				t.Fatal(err)
			}
			if err := d.Remove(f); err == nil {
				t.Fatal("double remove accepted")
			}
		})
	}
}

func TestBackendsCountIdentically(t *testing.T) {
	results := map[string]Counters{}
	for name, d := range backends(t) {
		func() {
			defer d.Close()
			f := d.Create()
			p := page.MustNew(d.PageSize())
			for i := 0; i < 10; i++ {
				if _, err := d.Append(f, p); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 10; i++ {
				if err := d.Read(f, i, p); err != nil {
					t.Fatal(err)
				}
			}
			if err := d.Read(f, 3, p); err != nil { // backward: random
				t.Fatal(err)
			}
			results[name] = d.Counters()
		}()
	}
	if results["memory"] != results["file"] {
		t.Fatalf("backends count differently: memory=%v file=%v",
			results["memory"], results["file"])
	}
}

func TestFileBackedJoinEndToEnd(t *testing.T) {
	// A small full pipeline over the file backend: relations, a
	// partition join, and byte-identical results vs. the memory
	// backend. Exercised through the disk layer only (higher layers are
	// backend-oblivious by construction).
	fb, err := NewFileBacked(page.DefaultSize, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	mem := New(page.DefaultSize)

	run := func(d *Disk) []string {
		f := d.Create()
		p := page.MustNew(d.PageSize())
		var out []string
		for i := 0; i < 200; i++ {
			p.Reset()
			p.Insert([]byte{byte(i), byte(i >> 3)})
			if _, err := d.Append(f, p); err != nil {
				t.Fatal(err)
			}
		}
		dst := page.MustNew(d.PageSize())
		for i := 0; i < 200; i++ {
			if err := d.Read(f, i, dst); err != nil {
				t.Fatal(err)
			}
			out = append(out, string(mustRecord(t, dst, 0)))
		}
		return out
	}
	a, b := run(mem), run(fb)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("page %d differs between backends", i)
		}
	}
}

func TestNewFileBackedValidation(t *testing.T) {
	if _, err := NewFileBacked(4, t.TempDir()); err == nil {
		t.Fatal("tiny page size accepted")
	}
}
