package temporal

import (
	"math/rand"
	"testing"

	"vtjoin/internal/chronon"
	"vtjoin/internal/disk"
	"vtjoin/internal/relation"
	"vtjoin/internal/schema"
	"vtjoin/internal/tuple"
	"vtjoin/internal/value"
)

var testSchema = schema.MustNew(
	schema.Column{Name: "k", Kind: value.KindInt},
	schema.Column{Name: "v", Kind: value.KindString},
)

func mk(k int64, v string, s, e chronon.Chronon) tuple.Tuple {
	return tuple.New(chronon.New(s, e), value.Int(k), value.String_(v))
}

func TestCoalesceTuplesBasic(t *testing.T) {
	in := []tuple.Tuple{
		mk(1, "a", 0, 5),
		mk(1, "a", 3, 9),   // overlaps: merge
		mk(1, "a", 10, 12), // adjacent: merge
		mk(1, "a", 20, 25), // gap: separate
		mk(1, "b", 0, 9),   // different value: separate
		mk(2, "a", 0, 9),   // different key: separate
	}
	out := CoalesceTuples(in)
	if len(out) != 4 {
		t.Fatalf("got %d tuples: %v", len(out), out)
	}
	if !IsCoalesced(out) {
		t.Fatalf("output not coalesced: %v", out)
	}
	// The (1, "a") group collapses to [0,12] and [20,25].
	var found bool
	for _, z := range out {
		if z.Values[0].AsInt() == 1 && z.Values[1].AsString() == "a" && z.V.Equal(chronon.New(0, 12)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("merged interval [0,12] missing: %v", out)
	}
}

func TestCoalesceEmptyAndSingleton(t *testing.T) {
	if out := CoalesceTuples(nil); len(out) != 0 {
		t.Fatal("empty input produced output")
	}
	one := []tuple.Tuple{mk(1, "a", 3, 7)}
	out := CoalesceTuples(one)
	if len(out) != 1 || !out[0].Equal(one[0]) {
		t.Fatalf("singleton changed: %v", out)
	}
}

func TestCoalescePreservesChrononSet(t *testing.T) {
	// Property: per value combination, the set of covered chronons is
	// unchanged; the output is canonical.
	rng := rand.New(rand.NewSource(80))
	for trial := 0; trial < 200; trial++ {
		var in []tuple.Tuple
		for i := 0; i < 30; i++ {
			s := chronon.Chronon(rng.Intn(60))
			in = append(in, mk(int64(rng.Intn(3)), "x", s, s+chronon.Chronon(rng.Intn(15))))
		}
		out := CoalesceTuples(in)
		if !IsCoalesced(out) {
			t.Fatalf("trial %d: not coalesced", trial)
		}
		for k := int64(0); k < 3; k++ {
			var inIvs, outIvs []chronon.Interval
			for _, z := range in {
				if z.Values[0].AsInt() == k {
					inIvs = append(inIvs, z.V)
				}
			}
			for _, z := range out {
				if z.Values[0].AsInt() == k {
					outIvs = append(outIvs, z.V)
				}
			}
			if !chronon.NewSet(inIvs...).Equal(chronon.NewSet(outIvs...)) {
				t.Fatalf("trial %d key %d: chronon set changed", trial, k)
			}
		}
	}
}

func TestCoalesceRelation(t *testing.T) {
	d := disk.New(4096)
	r, err := relation.FromTuples(d, testSchema, []tuple.Tuple{
		mk(1, "a", 0, 5), mk(1, "a", 6, 9), mk(2, "b", 0, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Coalesce(r)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tuples() != 2 {
		t.Fatalf("coalesced cardinality %d", out.Tuples())
	}
	if !out.Schema().Equal(r.Schema()) {
		t.Fatal("schema changed")
	}
}

func TestTimeslice(t *testing.T) {
	d := disk.New(4096)
	r, err := relation.FromTuples(d, testSchema, []tuple.Tuple{
		mk(1, "a", 0, 10),
		mk(2, "b", 5, 15),
		mk(3, "c", 20, 30),
	})
	if err != nil {
		t.Fatal(err)
	}
	at7, err := Timeslice(r, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(at7) != 2 {
		t.Fatalf("slice at 7: %v", at7)
	}
	at50, err := Timeslice(r, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(at50) != 0 {
		t.Fatalf("slice at 50: %v", at50)
	}
}

func TestCountOverTime(t *testing.T) {
	d := disk.New(4096)
	r, err := relation.FromTuples(d, testSchema, []tuple.Tuple{
		mk(1, "a", 0, 10),
		mk(2, "b", 5, 15),
		mk(3, "c", 5, 10),
		mk(4, "d", 20, 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := CountOverTime(r)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		c    int64
		s, e chronon.Chronon
	}{
		{1, 0, 4}, {3, 5, 10}, {1, 11, 15}, {1, 20, 20},
	}
	if len(out) != len(want) {
		t.Fatalf("got %v", out)
	}
	for i, w := range want {
		if out[i].Values[0].AsInt() != w.c || !out[i].V.Equal(chronon.New(w.s, w.e)) {
			t.Fatalf("segment %d = %v, want count %d over [%d, %d]", i, out[i], w.c, w.s, w.e)
		}
	}
}

func TestCountOverTimeEmpty(t *testing.T) {
	d := disk.New(4096)
	r, err := relation.FromTuples(d, testSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := CountOverTime(r)
	if err != nil || out != nil {
		t.Fatalf("empty: %v, %v", out, err)
	}
}

func TestCountOverTimeMatchesTimeslices(t *testing.T) {
	// Property: the count segment containing chronon c equals the size
	// of the timeslice at c.
	d := disk.New(4096)
	rng := rand.New(rand.NewSource(81))
	var ts []tuple.Tuple
	for i := 0; i < 200; i++ {
		s := chronon.Chronon(rng.Intn(500))
		ts = append(ts, mk(int64(i), "x", s, s+chronon.Chronon(rng.Intn(80))))
	}
	r, err := relation.FromTuples(d, testSchema, ts)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := CountOverTime(r)
	if err != nil {
		t.Fatal(err)
	}
	countAt := func(c chronon.Chronon) int64 {
		for _, seg := range segs {
			if seg.V.Contains(c) {
				return seg.Values[0].AsInt()
			}
		}
		return 0
	}
	for probe := 0; probe < 200; probe++ {
		c := chronon.Chronon(rng.Intn(650))
		slice, err := Timeslice(r, c)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(slice)) != countAt(c) {
			t.Fatalf("at %d: slice has %d, segments say %d", c, len(slice), countAt(c))
		}
	}
	// Segments must be disjoint and in order.
	for i := 1; i < len(segs); i++ {
		if segs[i].V.Start <= segs[i-1].V.End {
			t.Fatalf("segments overlap: %v then %v", segs[i-1].V, segs[i].V)
		}
	}
}

func TestSumOverTime(t *testing.T) {
	d := disk.New(4096)
	r, err := relation.FromTuples(d, testSchema, []tuple.Tuple{
		mk(10, "a", 0, 9),
		mk(5, "b", 5, 14),
		mk(-10, "c", 8, 9), // cancels the first tuple over [8,9]... partially
	})
	if err != nil {
		t.Fatal(err)
	}
	segs, err := SumOverTime(r, "k")
	if err != nil {
		t.Fatal(err)
	}
	// [0,4]=10, [5,7]=15, [8,9]=5, [10,14]=5 — note [8,9] and [10,14]
	// both sum to 5 but are separated by a boundary with a real change
	// in contributing tuples yet equal value: the aggregation tree
	// keeps them merged only if the deltas cancel. Here at 10 the
	// deltas are -10 (end of k=10) and +10 (end of k=-10), which cancel
	// exactly, so [8,14] stays one segment.
	want := []struct {
		sum  int64
		s, e chronon.Chronon
	}{
		{10, 0, 4}, {15, 5, 7}, {5, 8, 14},
	}
	if len(segs) != len(want) {
		t.Fatalf("segments: %v", segs)
	}
	for i, w := range want {
		if segs[i].Values[0].AsInt() != w.sum || !segs[i].V.Equal(chronon.New(w.s, w.e)) {
			t.Fatalf("segment %d = %v, want %d over [%d,%d]", i, segs[i], w.sum, w.s, w.e)
		}
	}
}

func TestSumOverTimeValidation(t *testing.T) {
	d := disk.New(4096)
	r, err := relation.FromTuples(d, testSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SumOverTime(r, "nope"); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := SumOverTime(r, "v"); err == nil {
		t.Fatal("non-int column accepted")
	}
	segs, err := SumOverTime(r, "k")
	if err != nil || segs != nil {
		t.Fatalf("empty: %v, %v", segs, err)
	}
}

func TestSumOverTimeIgnoresNulls(t *testing.T) {
	d := disk.New(4096)
	r, err := relation.FromTuples(d, testSchema, []tuple.Tuple{
		mk(7, "a", 0, 9),
		tuple.New(chronon.New(0, 9), value.Null(), value.String_("x")),
	})
	if err != nil {
		t.Fatal(err)
	}
	segs, err := SumOverTime(r, "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].Values[0].AsInt() != 7 {
		t.Fatalf("segments: %v", segs)
	}
}
