package temporal

import (
	"fmt"

	"vtjoin/internal/chronon"
	"vtjoin/internal/relation"
	"vtjoin/internal/tuple"
)

// DifferenceTuples computes the valid-time difference r −V s over
// in-memory tuple slices with identical schemas: for every fact (value
// combination), the chronons during which it holds in r but not in s.
// The result is coalesced.
func DifferenceTuples(r, s []tuple.Tuple) []tuple.Tuple {
	// Group s's coverage per value combination.
	type group struct {
		rep tuple.Tuple
		set chronon.Set
	}
	cover := make(map[uint64][]*group)
	for _, y := range s {
		h := valuesHash(y.Values)
		var g *group
		for _, cand := range cover[h] {
			if valuesEqual(cand.rep.Values, y.Values) {
				g = cand
				break
			}
		}
		if g == nil {
			g = &group{rep: y}
			cover[h] = append(cover[h], g)
		}
		g.set = g.set.Add(y.V)
	}
	var out []tuple.Tuple
	for _, x := range r {
		remain := chronon.NewSet(x.V)
		for _, cand := range cover[valuesHash(x.Values)] {
			if valuesEqual(cand.rep.Values, x.Values) {
				remain = remain.Subtract(cand.set)
				break
			}
		}
		for _, iv := range remain.Intervals() {
			out = append(out, tuple.Tuple{Values: x.Values, V: iv})
		}
	}
	return CoalesceTuples(out)
}

// Difference materializes r −V s as a new relation. The schemas must
// be identical.
func Difference(r, s *relation.Relation) (*relation.Relation, error) {
	if !r.Schema().Equal(s.Schema()) {
		return nil, fmt.Errorf("temporal: difference: schemas differ: %v vs %v", r.Schema(), s.Schema())
	}
	if r.Disk() != s.Disk() {
		return nil, fmt.Errorf("temporal: difference: relations on different devices")
	}
	rt, err := r.All()
	if err != nil {
		return nil, err
	}
	st, err := s.All()
	if err != nil {
		return nil, err
	}
	return relation.FromTuples(r.Disk(), r.Schema(), DifferenceTuples(rt, st))
}
