package temporal

import (
	"fmt"

	"vtjoin/internal/relation"
	"vtjoin/internal/schema"
	"vtjoin/internal/tuple"
	"vtjoin/internal/value"
)

// Project materializes the projection of r onto the named columns, in
// the given order. Valid-time projection is coalescing by definition:
// dropping columns can make distinct tuples value-equivalent, and the
// temporal model represents each fact once per maximal interval — so
// the result is coalesced (snapshot projection's DISTINCT, lifted to
// intervals).
func Project(r *relation.Relation, columns ...string) (*relation.Relation, error) {
	idx := make([]int, len(columns))
	cols := make([]schema.Column, len(columns))
	for i, name := range columns {
		j := r.Schema().Index(name)
		if j < 0 {
			return nil, fmt.Errorf("temporal: project: no column %q in %v", name, r.Schema())
		}
		idx[i] = j
		cols[i] = r.Schema().Column(j)
	}
	outSchema, err := schema.New(cols...)
	if err != nil {
		return nil, err
	}

	ts, err := r.All()
	if err != nil {
		return nil, err
	}
	projected := make([]tuple.Tuple, len(ts))
	for i, t := range ts {
		vals := make([]value.Value, len(idx))
		for k, j := range idx {
			vals[k] = t.Values[j]
		}
		projected[i] = tuple.Tuple{Values: vals, V: t.V}
	}
	return relation.FromTuples(r.Disk(), outSchema, CoalesceTuples(projected))
}

// Select materializes the tuples of r satisfying pred, preserving
// storage order (a sequential scan).
func Select(r *relation.Relation, pred func(tuple.Tuple) bool) (*relation.Relation, error) {
	out := relation.CreateFormat(r.Disk(), r.Schema(), r.Format())
	b := out.NewBuilder()
	sc := r.Scan()
	for {
		t, ok, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if pred(t) {
			if err := b.AppendUnchecked(t); err != nil {
				return nil, err
			}
		}
	}
	if err := b.Flush(); err != nil {
		return nil, err
	}
	return out, nil
}
