package temporal

import (
	"math/rand"
	"testing"

	"vtjoin/internal/chronon"
	"vtjoin/internal/disk"
	"vtjoin/internal/relation"
	"vtjoin/internal/schema"
	"vtjoin/internal/tuple"
	"vtjoin/internal/value"
)

func TestDifferenceTuplesBasic(t *testing.T) {
	r := []tuple.Tuple{
		mk(1, "a", 0, 10),
		mk(2, "b", 0, 10),
	}
	s := []tuple.Tuple{
		mk(1, "a", 3, 5),   // punches a hole in (1,"a")
		mk(2, "b", 0, 20),  // removes (2,"b") entirely
		mk(9, "z", 0, 100), // irrelevant fact
	}
	got := DifferenceTuples(r, s)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	// (1,"a") survives on [0,2] and [6,10].
	if !got[0].V.Equal(chronon.New(0, 2)) || !got[1].V.Equal(chronon.New(6, 10)) {
		t.Fatalf("got %v", got)
	}
	for _, z := range got {
		if z.Values[0].AsInt() != 1 {
			t.Fatalf("wrong fact survived: %v", z)
		}
	}
}

func TestDifferenceEmptySides(t *testing.T) {
	r := []tuple.Tuple{mk(1, "a", 0, 5)}
	if got := DifferenceTuples(r, nil); len(got) != 1 || !got[0].Equal(r[0]) {
		t.Fatalf("r - empty = %v", got)
	}
	if got := DifferenceTuples(nil, r); len(got) != 0 {
		t.Fatalf("empty - s = %v", got)
	}
	if got := DifferenceTuples(r, r); len(got) != 0 {
		t.Fatalf("r - r = %v", got)
	}
}

func TestDifferenceMatchesSliceModel(t *testing.T) {
	// Property: at every chronon, the difference's snapshot equals the
	// set difference of the inputs' snapshots.
	rng := rand.New(rand.NewSource(95))
	for trial := 0; trial < 100; trial++ {
		gen := func() []tuple.Tuple {
			var out []tuple.Tuple
			for i := 0; i < 15; i++ {
				st := chronon.Chronon(rng.Intn(50))
				out = append(out, mk(int64(rng.Intn(3)), "x", st, st+chronon.Chronon(rng.Intn(20))))
			}
			return out
		}
		r, s := gen(), gen()
		diff := DifferenceTuples(r, s)
		if !IsCoalesced(diff) {
			t.Fatalf("trial %d: difference not coalesced", trial)
		}
		for c := chronon.Chronon(0); c < 75; c++ {
			inR := map[int64]bool{}
			for _, x := range r {
				if x.V.Contains(c) {
					inR[x.Values[0].AsInt()] = true
				}
			}
			inS := map[int64]bool{}
			for _, y := range s {
				if y.V.Contains(c) {
					inS[y.Values[0].AsInt()] = true
				}
			}
			inD := map[int64]bool{}
			for _, z := range diff {
				if z.V.Contains(c) {
					inD[z.Values[0].AsInt()] = true
				}
			}
			for k := int64(0); k < 3; k++ {
				want := inR[k] && !inS[k]
				if inD[k] != want {
					t.Fatalf("trial %d chronon %d key %d: got %v want %v", trial, c, k, inD[k], want)
				}
			}
		}
	}
}

func TestDifferenceRelation(t *testing.T) {
	d := disk.New(4096)
	r, err := relation.FromTuples(d, testSchema, []tuple.Tuple{mk(1, "a", 0, 10)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := relation.FromTuples(d, testSchema, []tuple.Tuple{mk(1, "a", 4, 6)})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Difference(r, s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tuples() != 2 {
		all, _ := out.All()
		t.Fatalf("difference: %v", all)
	}
	// Schema mismatch rejected.
	other := schema.MustNew(schema.Column{Name: "x", Kind: value.KindInt})
	q, err := relation.FromTuples(d, other, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Difference(r, q); err == nil {
		t.Fatal("schema mismatch accepted")
	}
	// Cross-device rejected.
	d2 := disk.New(4096)
	s2, err := relation.FromTuples(d2, testSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Difference(r, s2); err == nil {
		t.Fatal("cross-device accepted")
	}
}
