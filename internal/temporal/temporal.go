// Package temporal implements the companion operators of a valid-time
// query processor built around the natural join:
//
//   - Coalesce merges value-equivalent tuples whose timestamps overlap
//     or are adjacent, restoring the canonical form that temporal
//     normalization theory assumes ([JSS92a]); joins and projections
//     routinely produce uncoalesced results.
//   - Timeslice computes the snapshot of a relation at one chronon —
//     the operation that makes snapshot reducibility checkable.
//   - Project/Select/Difference are the remaining algebra around the
//     join: coalescing projection, selection, valid-time set
//     difference.
//   - CountOverTime/SumOverTime compute time-varying aggregates: one
//     result tuple per maximal interval with a constant value, built
//     on the aggregation tree (internal/aggtree) the paper's
//     acknowledgments credit for its own simulations.
package temporal

import (
	"fmt"
	"sort"

	"vtjoin/internal/aggtree"
	"vtjoin/internal/chronon"
	"vtjoin/internal/relation"
	"vtjoin/internal/schema"
	"vtjoin/internal/tuple"
	"vtjoin/internal/value"
)

// CoalesceTuples merges value-equivalent tuples (identical explicit
// attributes) whose valid-time intervals overlap or meet. The result
// is canonical: per value combination, maximal disjoint non-adjacent
// intervals, in deterministic order.
func CoalesceTuples(ts []tuple.Tuple) []tuple.Tuple {
	groups := make(map[uint64][]int) // value-hash -> tuple indexes
	order := make([]uint64, 0)
	for i, t := range ts {
		h := valuesHash(t.Values)
		if _, seen := groups[h]; !seen {
			order = append(order, h)
		}
		groups[h] = append(groups[h], i)
	}
	var out []tuple.Tuple
	for _, h := range order {
		idxs := groups[h]
		// Hash buckets may contain distinct value tuples on collision;
		// split exactly.
		for len(idxs) > 0 {
			rep := ts[idxs[0]]
			var same, rest []int
			for _, i := range idxs {
				if valuesEqual(rep.Values, ts[i].Values) {
					same = append(same, i)
				} else {
					rest = append(rest, i)
				}
			}
			ivs := make([]chronon.Interval, len(same))
			for k, i := range same {
				ivs[k] = ts[i].V
			}
			for _, iv := range chronon.NewSet(ivs...).Intervals() {
				out = append(out, tuple.Tuple{Values: rep.Values, V: iv})
			}
			idxs = rest
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Coalesce materializes the coalesced form of r as a new relation on
// the same device. The input is scanned once; grouping happens in
// memory (coalescing is a pipeline breaker, like sorting).
func Coalesce(r *relation.Relation) (*relation.Relation, error) {
	ts, err := r.All()
	if err != nil {
		return nil, err
	}
	out, err := relation.FromTuples(r.Disk(), r.Schema(), CoalesceTuples(ts))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// IsCoalesced reports whether ts contains no pair of value-equivalent
// tuples with overlapping or adjacent timestamps.
func IsCoalesced(ts []tuple.Tuple) bool {
	for i := range ts {
		for j := i + 1; j < len(ts); j++ {
			if !valuesEqual(ts[i].Values, ts[j].Values) {
				continue
			}
			if ts[i].V.Overlaps(ts[j].V) || ts[i].V.Meets(ts[j].V) || ts[j].V.Meets(ts[i].V) {
				return false
			}
		}
	}
	return true
}

// Timeslice returns the snapshot of r at chronon c: the explicit
// attribute rows of every tuple valid at c (a sequential scan).
func Timeslice(r *relation.Relation, c chronon.Chronon) ([]tuple.Tuple, error) {
	var out []tuple.Tuple
	sc := r.Scan()
	for {
		t, ok, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		if t.V.Contains(c) {
			out = append(out, t)
		}
	}
}

// CountSchema is the output schema of CountOverTime.
var CountSchema = schema.MustNew(schema.Column{Name: "count", Kind: value.KindInt})

// SumSchema is the output schema of SumOverTime.
var SumSchema = schema.MustNew(schema.Column{Name: "sum", Kind: value.KindInt})

// CountOverTime computes the time-varying COUNT of r: one tuple
// (count | [a, b]) per maximal interval over which exactly `count`
// tuples of r are valid, count >= 1, in time order. It is built on the
// incremental aggregation tree (internal/aggtree) the paper credits
// for its own simulations.
func CountOverTime(r *relation.Relation) ([]tuple.Tuple, error) {
	return aggregateOverTime(r, func(tuple.Tuple) (int64, error) { return 1, nil })
}

// SumOverTime computes the time-varying SUM of an integer column: one
// tuple (sum | [a, b]) per maximal interval of constant non-zero sum.
func SumOverTime(r *relation.Relation, column string) ([]tuple.Tuple, error) {
	idx := r.Schema().Index(column)
	if idx < 0 {
		return nil, fmt.Errorf("temporal: sum: no column %q in %v", column, r.Schema())
	}
	if k := r.Schema().Column(idx).Kind; k != value.KindInt {
		return nil, fmt.Errorf("temporal: sum: column %q is %v, want int", column, k)
	}
	return aggregateOverTime(r, func(t tuple.Tuple) (int64, error) {
		v := t.Values[idx]
		if v.IsNull() {
			return 0, nil // SQL semantics: nulls contribute nothing
		}
		return v.AsInt(), nil
	})
}

func aggregateOverTime(r *relation.Relation, weight func(tuple.Tuple) (int64, error)) ([]tuple.Tuple, error) {
	var tree aggtree.Tree
	sc := r.Scan()
	for {
		t, ok, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		w, err := weight(t)
		if err != nil {
			return nil, err
		}
		tree.Insert(t.V, w)
	}
	segs := tree.Segments()
	out := make([]tuple.Tuple, len(segs))
	for i, s := range segs {
		out[i] = tuple.New(s.Interval, value.Int(s.Value))
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// valuesHash groups tuples by attribute values; it shares the
// order-sensitive key combiner of the join layer so permuted or
// repeated values do not collide.
func valuesHash(vs []value.Value) uint64 { return tuple.JoinKey(vs).Hash() }

func valuesEqual(a, b []value.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
