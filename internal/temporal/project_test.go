package temporal

import (
	"testing"

	"vtjoin/internal/chronon"
	"vtjoin/internal/disk"
	"vtjoin/internal/relation"
	"vtjoin/internal/tuple"
	"vtjoin/internal/value"
)

func buildProjectFixture(t *testing.T, d *disk.Disk) *relation.Relation {
	t.Helper()
	r, err := relation.FromTuples(d, testSchema, []tuple.Tuple{
		mk(1, "a", 0, 5),
		mk(2, "a", 6, 10), // same "v", different "k": merges after projecting to v
		mk(3, "b", 0, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestProjectCoalesces(t *testing.T) {
	d := disk.New(4096)
	r := buildProjectFixture(t, d)
	out, err := Project(r, "v")
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema().Len() != 1 || out.Schema().Column(0).Name != "v" {
		t.Fatalf("schema %v", out.Schema())
	}
	ts, err := out.All()
	if err != nil {
		t.Fatal(err)
	}
	// ("a" | [0,10]) merged across the two source tuples, ("b" | [0,4]).
	if len(ts) != 2 {
		t.Fatalf("projected: %v", ts)
	}
	if !IsCoalesced(ts) {
		t.Fatal("projection not coalesced")
	}
	var found bool
	for _, z := range ts {
		if z.Values[0].AsString() == "a" && z.V.Equal(chronon.New(0, 10)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("merged tuple missing: %v", ts)
	}
}

func TestProjectReorders(t *testing.T) {
	d := disk.New(4096)
	r := buildProjectFixture(t, d)
	out, err := Project(r, "v", "k")
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema().Column(0).Name != "v" || out.Schema().Column(1).Name != "k" {
		t.Fatalf("schema %v", out.Schema())
	}
	if out.Tuples() != 3 { // all distinct once both columns kept
		t.Fatalf("cardinality %d", out.Tuples())
	}
}

func TestProjectUnknownColumn(t *testing.T) {
	d := disk.New(4096)
	r := buildProjectFixture(t, d)
	if _, err := Project(r, "nope"); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestSelect(t *testing.T) {
	d := disk.New(4096)
	r := buildProjectFixture(t, d)
	out, err := Select(r, func(t tuple.Tuple) bool {
		return t.Values[0].AsInt() >= 2
	})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := out.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("selected: %v", ts)
	}
	for _, z := range ts {
		if z.Values[0].AsInt() < 2 {
			t.Fatalf("predicate violated: %v", z)
		}
	}
	// Temporal selection: restrict to tuples valid in a window.
	window := chronon.New(5, 8)
	out2, err := Select(r, func(t tuple.Tuple) bool { return t.V.Overlaps(window) })
	if err != nil {
		t.Fatal(err)
	}
	if out2.Tuples() != 2 {
		all, _ := out2.All()
		t.Fatalf("window selection: %v", all)
	}
	_ = value.Null // keep value import honest if fixtures change
}
