package csvio

import (
	"bytes"
	"strings"
	"testing"

	"vtjoin/internal/chronon"
	"vtjoin/internal/disk"
	"vtjoin/internal/relation"
	"vtjoin/internal/schema"
	"vtjoin/internal/tuple"
	"vtjoin/internal/value"
)

var testSchema = schema.MustNew(
	schema.Column{Name: "name", Kind: value.KindString},
	schema.Column{Name: "salary", Kind: value.KindInt},
	schema.Column{Name: "rate", Kind: value.KindFloat},
	schema.Column{Name: "active", Kind: value.KindBool},
)

func sampleRelation(t *testing.T, d *disk.Disk) *relation.Relation {
	t.Helper()
	r, err := relation.FromTuples(d, testSchema, []tuple.Tuple{
		tuple.New(chronon.New(10, 20), value.String_("alice"), value.Int(70000), value.Float(1.5), value.Bool(true)),
		tuple.New(chronon.New(5, 30), value.String_("bob, jr"), value.Int(60000), value.Float(0.25), value.Bool(false)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRoundTrip(t *testing.T) {
	d := disk.New(4096)
	r := sampleRelation(t, d)
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, d)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema().Equal(r.Schema()) {
		t.Fatalf("schema changed: %v vs %v", got.Schema(), r.Schema())
	}
	a, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("cardinality changed: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("tuple %d changed: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestHeaderFormat(t *testing.T) {
	h := FormatHeader(testSchema)
	want := []string{"vs", "ve", "name:string", "salary:int", "rate:float", "active:bool"}
	if len(h) != len(want) {
		t.Fatalf("header %v", h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("header %v, want %v", h, want)
		}
	}
	s, err := ParseHeader(h)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(testSchema) {
		t.Fatal("header round trip changed schema")
	}
}

func TestParseHeaderErrors(t *testing.T) {
	bad := [][]string{
		{},
		{"vs"},
		{"ve", "vs"},
		{"vs", "ve", "nokind"},
		{"vs", "ve", "x:decimal"},
		{"vs", "ve", "x:int", "x:int"},
	}
	for _, h := range bad {
		if _, err := ParseHeader(h); err == nil {
			t.Errorf("header %v accepted", h)
		}
	}
}

func TestReadErrors(t *testing.T) {
	d := disk.New(4096)
	cases := []string{
		"",                            // no header
		"vs,ve,x:int\nnotanumber,2,3", // bad vs
		"vs,ve,x:int\n1,notanumber,3", // bad ve
		"vs,ve,x:int\n9,2,3",          // inverted interval
		"vs,ve,x:int\n1,2",            // missing field
		"vs,ve,x:int\n1,2,3,4",        // extra field
		"vs,ve,x:int\n1,2,notanumber", // bad value
		"vs,ve,x:bytes\n1,2,zz",       // bad bytes literal
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c), d); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

func TestReadEmptyRelation(t *testing.T) {
	d := disk.New(4096)
	r, err := Read(strings.NewReader("vs,ve,x:int\n"), d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tuples() != 0 {
		t.Fatal("empty CSV produced tuples")
	}
}

func TestQuotedStringsSurvive(t *testing.T) {
	d := disk.New(4096)
	r := sampleRelation(t, d)
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"bob, jr"`) {
		t.Fatalf("comma-containing string not quoted:\n%s", buf.String())
	}
}

func TestNullRoundTrip(t *testing.T) {
	d := disk.New(4096)
	s := schema.MustNew(
		schema.Column{Name: "name", Kind: value.KindString},
		schema.Column{Name: "dept", Kind: value.KindString},
	)
	r, err := relation.FromTuples(d, s, []tuple.Tuple{
		tuple.New(chronon.New(0, 5), value.String_("alice"), value.Null()),
		tuple.New(chronon.New(6, 9), value.Null(), value.String_("eng")),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), NullSentinel) {
		t.Fatalf("null sentinel missing:\n%s", buf.String())
	}
	got, err := Read(&buf, d)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := got.All()
	if err != nil {
		t.Fatal(err)
	}
	if !ts[0].Values[1].IsNull() || !ts[1].Values[0].IsNull() {
		t.Fatalf("nulls lost: %v", ts)
	}
	if ts[0].Values[0].AsString() != "alice" {
		t.Fatal("typed value lost")
	}
}

func TestOngoingRoundTrip(t *testing.T) {
	s := schema.MustNew(schema.Column{Name: "k", Kind: value.KindInt})
	ts := []tuple.Tuple{
		tuple.New(chronon.NewOngoing(10), value.Int(1)),
		tuple.New(chronon.New(0, 5), value.Int(2)),
	}
	var buf bytes.Buffer
	if err := WriteTuples(&buf, s, ts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "10,now,1") {
		t.Fatalf("ongoing end not rendered as %q:\n%s", NowSentinel, buf.String())
	}
	_, got, err := ReadTuples(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].V.IsOngoing() || got[0].V.Start != 10 {
		t.Fatalf("ongoing interval did not round-trip: %v", got)
	}
	if got[1].V.IsOngoing() {
		t.Fatal("fixed interval came back ongoing")
	}
	// "now" in the vs field is rejected: only ends are open.
	if _, _, err := ReadTuples(strings.NewReader("vs,ve,k:int\nnow,5,1\n")); err == nil {
		t.Fatal("\"now\" accepted as a start chronon")
	}
}
