// Package csvio reads and writes valid-time relations as CSV, the
// interchange format of the cmd/vtjoin and cmd/vtgen tools.
//
// The first record is a header: the literal columns "vs" and "ve"
// (the valid-time start and end chronons) followed by one
// "name:kind" entry per explicit column, e.g.
//
//	vs,ve,name:string,salary:int
//	10,20,alice,70000
//
// Null values (outer-join padding) are written as the sentinel "␀"
// (U+2400 SYMBOL FOR NULL), which round-trips regardless of the
// column's declared kind.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vtjoin/internal/chronon"
	"vtjoin/internal/disk"
	"vtjoin/internal/relation"
	"vtjoin/internal/schema"
	"vtjoin/internal/tuple"
	"vtjoin/internal/value"
)

// NullSentinel is the CSV representation of a null value.
const NullSentinel = "\u2400"

// NowSentinel is the CSV representation of the open end of an ongoing
// interval (chronon.Now): a "ve" field of "now" marks a tuple whose
// validity extends to the ever-advancing current time.
const NowSentinel = "now"

// FormatHeader renders the header record for a schema.
func FormatHeader(s *schema.Schema) []string {
	out := []string{"vs", "ve"}
	for _, c := range s.Columns() {
		out = append(out, c.Name+":"+c.Kind.String())
	}
	return out
}

// ParseHeader parses a header record into a schema.
func ParseHeader(rec []string) (*schema.Schema, error) {
	if len(rec) < 2 || rec[0] != "vs" || rec[1] != "ve" {
		return nil, fmt.Errorf("csvio: header must start with vs,ve; got %v", rec)
	}
	var cols []schema.Column
	for _, f := range rec[2:] {
		name, kindName, ok := strings.Cut(f, ":")
		if !ok {
			return nil, fmt.Errorf("csvio: header column %q is not name:kind", f)
		}
		k, err := value.ParseKind(kindName)
		if err != nil {
			return nil, fmt.Errorf("csvio: header column %q: %w", f, err)
		}
		cols = append(cols, schema.Column{Name: name, Kind: k})
	}
	return schema.New(cols...)
}

// Write streams the relation to w as CSV (a counted sequential scan).
func Write(w io.Writer, r *relation.Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(FormatHeader(r.Schema())); err != nil {
		return err
	}
	rec := make([]string, 2+r.Schema().Len())
	sc := r.Scan()
	for {
		t, ok, err := sc.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := cw.Write(formatRecord(rec, t)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTuples writes an in-memory tuple slice as a CSV relation.
func WriteTuples(w io.Writer, s *schema.Schema, ts []tuple.Tuple) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(FormatHeader(s)); err != nil {
		return err
	}
	rec := make([]string, 2+s.Len())
	for _, t := range ts {
		if err := cw.Write(formatRecord(rec, t)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatRecord renders t's fields into rec, which must have
// 2+len(t.Values) entries: vs, ve (the NowSentinel for ongoing
// intervals), then the column values. It returns rec for convenience;
// streaming writers (the query server) reuse one record across rows.
func FormatRecord(rec []string, t tuple.Tuple) []string {
	return formatRecord(rec, t)
}

func formatRecord(rec []string, t tuple.Tuple) []string {
	rec[0] = strconv.FormatInt(int64(t.V.Start), 10)
	if t.V.IsOngoing() {
		rec[1] = NowSentinel
	} else {
		rec[1] = strconv.FormatInt(int64(t.V.End), 10)
	}
	for i, v := range t.Values {
		if v.IsNull() {
			rec[2+i] = NullSentinel
		} else {
			rec[2+i] = v.Text()
		}
	}
	return rec
}

// Read loads a CSV relation onto d.
func Read(rd io.Reader, d *disk.Disk) (*relation.Relation, error) {
	s, ts, err := ReadTuples(rd)
	if err != nil {
		return nil, err
	}
	return relation.FromTuples(d, s, ts)
}

// ReadTuples parses a CSV relation into its schema and tuples without
// touching storage.
func ReadTuples(rd io.Reader) (*schema.Schema, []tuple.Tuple, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = -1 // validated manually with line numbers
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("csvio: reading header: %w", err)
	}
	s, err := ParseHeader(header)
	if err != nil {
		return nil, nil, err
	}
	var out []tuple.Tuple
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("csvio: line %d: %w", line+1, err)
		}
		line++
		if len(rec) != 2+s.Len() {
			return nil, nil, fmt.Errorf("csvio: line %d: %d fields, want %d", line, len(rec), 2+s.Len())
		}
		vs, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("csvio: line %d: vs: %w", line, err)
		}
		var iv chronon.Interval
		if rec[1] == NowSentinel {
			iv, err = chronon.NewOngoingChecked(chronon.Chronon(vs))
			if err != nil {
				return nil, nil, fmt.Errorf("csvio: line %d: %w", line, err)
			}
		} else {
			ve, err := strconv.ParseInt(rec[1], 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("csvio: line %d: ve: %w", line, err)
			}
			iv, err = chronon.NewChecked(chronon.Chronon(vs), chronon.Chronon(ve))
			if err != nil {
				return nil, nil, fmt.Errorf("csvio: line %d: %w", line, err)
			}
		}
		vals := make([]value.Value, s.Len())
		for i := 0; i < s.Len(); i++ {
			if rec[2+i] == NullSentinel {
				vals[i] = value.Null()
				continue
			}
			v, err := value.Parse(s.Column(i).Kind, rec[2+i])
			if err != nil {
				return nil, nil, fmt.Errorf("csvio: line %d column %q: %w", line, s.Column(i).Name, err)
			}
			vals[i] = v
		}
		t := tuple.Tuple{Values: vals, V: iv}
		if err := t.CheckAgainst(s); err != nil {
			return nil, nil, fmt.Errorf("csvio: line %d: %w", line, err)
		}
		out = append(out, t)
	}
	return s, out, nil
}
