package plan2

import (
	"fmt"

	"vtjoin/internal/chronon"
	"vtjoin/internal/query"
	"vtjoin/internal/schema"
	"vtjoin/internal/tuple"
	"vtjoin/internal/value"
)

// Pred is a typed, bound selection predicate.
type Pred interface {
	// Eval decides the tuple. Bound predicates never error at
	// evaluation time: every name and type was checked at bind time.
	Eval(t tuple.Tuple) bool
}

type andPred struct{ l, r Pred }

func (p andPred) Eval(t tuple.Tuple) bool { return p.l.Eval(t) && p.r.Eval(t) }

type orPred struct{ l, r Pred }

func (p orPred) Eval(t tuple.Tuple) bool { return p.l.Eval(t) || p.r.Eval(t) }

type notPred struct{ e Pred }

func (p notPred) Eval(t tuple.Tuple) bool { return !p.e.Eval(t) }

// cmpOp encodes which comparison outcomes satisfy the operator:
// bit 0 = less, bit 1 = equal, bit 2 = greater.
type cmpOp uint8

const (
	cmpLess    cmpOp = 1
	cmpEqual   cmpOp = 2
	cmpGreater cmpOp = 4
)

var cmpOps = map[string]cmpOp{
	"=":  cmpEqual,
	"!=": cmpLess | cmpGreater,
	"<":  cmpLess,
	"<=": cmpLess | cmpEqual,
	">":  cmpGreater,
	">=": cmpGreater | cmpEqual,
}

// cmpPred compares one column against a typed literal.
type cmpPred struct {
	col int
	op  cmpOp
	lit value.Value
}

func (p cmpPred) Eval(t tuple.Tuple) bool {
	v := t.Values[p.col]
	if v.IsNull() {
		// SQL three-valued logic collapsed to boolean: a comparison
		// against null is not satisfied (use "= null" to test nulls).
		return false
	}
	switch c := v.Compare(p.lit); {
	case c < 0:
		return p.op&cmpLess != 0
	case c > 0:
		return p.op&cmpGreater != 0
	default:
		return p.op&cmpEqual != 0
	}
}

// nullPred tests a column for null ("col = null" / "col != null").
type nullPred struct {
	col  int
	want bool
}

func (p nullPred) Eval(t tuple.Tuple) bool { return t.Values[p.col].IsNull() == p.want }

// timePred constrains the tuple's valid-time interval against a
// literal interval.
type timePred struct {
	op  string
	ivl chronon.Interval
}

func (p timePred) Eval(t tuple.Tuple) bool {
	switch p.op {
	case "overlaps":
		return t.V.Overlaps(p.ivl)
	case "contains":
		return t.V.ContainsInterval(p.ivl)
	case "during":
		return p.ivl.ContainsInterval(t.V)
	default: // "equals"
		return t.V.Equal(p.ivl)
	}
}

// bindPred types a parsed predicate against a schema.
func bindPred(e query.Expr, s *schema.Schema) (Pred, error) {
	switch x := e.(type) {
	case *query.LogicExpr:
		l, err := bindPred(x.L, s)
		if err != nil {
			return nil, err
		}
		r, err := bindPred(x.R, s)
		if err != nil {
			return nil, err
		}
		if x.Op == "and" {
			return andPred{l, r}, nil
		}
		return orPred{l, r}, nil

	case *query.NotExpr:
		inner, err := bindPred(x.E, s)
		if err != nil {
			return nil, err
		}
		return notPred{inner}, nil

	case *query.TimeExpr:
		return timePred{op: x.Op, ivl: x.Ivl}, nil

	case *query.CompareExpr:
		return bindCompare(x, s)
	}
	return nil, fmt.Errorf("plan2: unknown predicate type %T", e)
}

func bindCompare(x *query.CompareExpr, s *schema.Schema) (Pred, error) {
	fail := func(format string, args ...any) error {
		return &query.Error{Line: x.Line, Col: x.Col, Msg: fmt.Sprintf(format, args...)}
	}
	i := s.Index(x.Column)
	if i < 0 {
		return nil, fail("select: no column %q in %v", x.Column, s)
	}
	kind := s.Column(i).Kind
	op, ok := cmpOps[x.Op]
	if !ok {
		return nil, fail("select: unknown operator %q", x.Op)
	}

	if x.Lit.Kind == query.LitNull {
		switch x.Op {
		case "=":
			return nullPred{col: i, want: true}, nil
		case "!=":
			return nullPred{col: i, want: false}, nil
		}
		return nil, fail("select: null supports only = and !=, not %q", x.Op)
	}

	// Type the literal to the column's kind; an int literal promotes to
	// a float column, everything else must match exactly.
	var lit value.Value
	switch kind {
	case value.KindInt:
		if x.Lit.Kind != query.LitInt {
			return nil, fail("select: column %q is int, literal %s is not", x.Column, x.Lit)
		}
		lit = value.Int(x.Lit.Int)
	case value.KindFloat:
		switch x.Lit.Kind {
		case query.LitFloat:
			lit = value.Float(x.Lit.Float)
		case query.LitInt:
			lit = value.Float(float64(x.Lit.Int))
		default:
			return nil, fail("select: column %q is float, literal %s is not numeric", x.Column, x.Lit)
		}
	case value.KindString:
		if x.Lit.Kind != query.LitString {
			return nil, fail("select: column %q is string, literal %s is not", x.Column, x.Lit)
		}
		lit = value.String_(x.Lit.Str)
	case value.KindBool:
		if x.Lit.Kind != query.LitBool {
			return nil, fail("select: column %q is bool, literal %s is not", x.Column, x.Lit)
		}
		if x.Op != "=" && x.Op != "!=" {
			return nil, fail("select: bool column %q supports only = and !=", x.Column)
		}
		lit = value.Bool(x.Lit.Bool)
	case value.KindBytes:
		return nil, fail("select: bytes column %q is only comparable to null", x.Column)
	default:
		return nil, fail("select: column %q has unsupported kind %v", x.Column, kind)
	}
	return cmpPred{col: i, op: op, lit: lit}, nil
}
