package plan2

import (
	"context"
	"fmt"
	"math/rand"

	"vtjoin/internal/aggtree"
	"vtjoin/internal/cost"
	"vtjoin/internal/disk"
	"vtjoin/internal/execctx"
	"vtjoin/internal/join"
	"vtjoin/internal/relation"
	"vtjoin/internal/shard"
	"vtjoin/internal/temporal"
	"vtjoin/internal/trace"
	"vtjoin/internal/tuple"
	"vtjoin/internal/value"
)

// Config configures one execution of a bound plan.
type Config struct {
	// Ctx cancels the execution cooperatively at page granularity (nil
	// = never cancelled). Aborts surface as *execctx.AbortError.
	Ctx context.Context
	// Disk is the device temporary relations (materialized join inputs,
	// difference results) are created on — the device the catalog's
	// relations live on.
	Disk *disk.Disk
	// MemoryPages is the per-join buffer budget (default 256); a join
	// stage's "memory" hint overrides it for that join.
	MemoryPages int
	// RandomCost weights random against sequential accesses in the
	// partition join's planning (default 5).
	RandomCost float64
	// Seed drives the partition join's sampling (default 1).
	Seed int64
	// Tracer, when non-nil, attributes execution spans (materialize,
	// join, diff, aggregate phases) to the query. The executor is
	// sequential up to the single in-flight join producer, so spans
	// nest correctly.
	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.MemoryPages == 0 {
		c.MemoryPages = 256
	}
	if c.RandomCost == 0 {
		c.RandomCost = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Run executes the plan, streaming every result tuple to emit. emit
// must not retain the tuple's Values slice beyond the call unless it
// clones. It returns the number of tuples emitted.
func Run(cfg Config, root Node, emit func(tuple.Tuple) error) (int64, error) {
	it, err := Open(cfg, root)
	if err != nil {
		return 0, err
	}
	var n int64
	for {
		t, ok, err := it.Next()
		if err != nil {
			_ = it.Close()
			return n, err
		}
		if !ok {
			break
		}
		if err := emit(t); err != nil {
			_ = it.Close()
			return n, err
		}
		n++
	}
	return n, it.Close()
}

// Open builds the plan's iterator pipeline. The caller must Close the
// iterator — even after a failed or abandoned stream — to release
// producer goroutines and temporary relations.
func Open(cfg Config, root Node) (*Iterator, error) {
	if cfg.Disk == nil {
		return nil, fmt.Errorf("plan2: Config.Disk is nil")
	}
	if root == nil {
		return nil, fmt.Errorf("plan2: nil plan")
	}
	return open(cfg.withDefaults(), root), nil
}

func open(cfg Config, node Node) *Iterator {
	switch n := node.(type) {
	case *ScanNode:
		return scanIter(cfg.Ctx, n.Rel)
	case *SelectNode:
		return filterIter(open(cfg, n.Input), n.Pred)
	case *ProjectNode:
		return projectIter(open(cfg, n.Input), n.Cols)
	case *JoinNode:
		return joinIter(cfg, n)
	case *DiffNode:
		return diffIter(cfg, n)
	case *AggregateNode:
		return aggIter(cfg, n)
	}
	return errIter(fmt.Errorf("plan2: unknown node type %T", node))
}

func projectIter(in *Iterator, cols []int) *Iterator {
	buf := make([]value.Value, len(cols))
	return mapIter(in, func(t tuple.Tuple) tuple.Tuple {
		for i, c := range cols {
			buf[i] = t.Values[c]
		}
		return tuple.Tuple{V: t.V, Values: buf}
	})
}

// materialize evaluates a sub-plan into a relation on cfg.Disk. A bare
// scan returns its base relation directly (temp == false); anything
// else builds a temporary relation the caller must Drop.
func materialize(cfg Config, node Node) (rel *relation.Relation, temp bool, err error) {
	if sc, ok := node.(*ScanNode); ok {
		return sc.Rel, false, nil
	}
	out := relation.Create(cfg.Disk, node.Schema())
	sink := out.NewBuilder()
	it := open(cfg, node)
	for {
		t, ok, nerr := it.Next()
		if nerr != nil {
			err = nerr
			break
		}
		if !ok {
			err = sink.Flush()
			break
		}
		if aerr := sink.Append(t); aerr != nil {
			err = aerr
			break
		}
	}
	if cerr := it.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		_ = out.Drop()
		return nil, false, err
	}
	return out, true, nil
}

// dropTemp returns a closer dropping rel when it is a temporary.
func dropTemp(rel *relation.Relation, temp bool) func() error {
	if !temp {
		return nil
	}
	return rel.Drop
}

// joinIter evaluates a join node: both inputs become relations (base
// relations directly, other sub-plans materialized), then the join
// runs in a producer goroutine streaming result tuples through a
// bounded channel — the pull boundary that lets a join head a lazy
// pipeline. Closing the iterator early cancels the producer, which
// aborts cooperatively and cleans its spill files.
func joinIter(cfg Config, n *JoinNode) *Iterator {
	tr := cfg.Tracer
	tr.Begin("materialize inputs")
	left, ltemp, err := materialize(cfg, n.Left)
	if err != nil {
		tr.End()
		return errIter(err)
	}
	right, rtemp, err := materialize(cfg, n.Right)
	tr.End()
	if err != nil {
		cleanup := closers(dropTemp(left, ltemp))
		_ = cleanup()
		return errIter(err)
	}

	ctx, cancel := context.WithCancel(execctx.Value(cfg.Ctx))
	st := &streamState{
		ch:     make(chan tuple.Tuple, 64),
		errc:   make(chan error, 1),
		cancel: cancel,
		clean:  closers(dropTemp(left, ltemp), dropTemp(right, rtemp)),
	}
	go func() {
		err := func() (err error) {
			defer execctx.RecoverTo("exec: join", &err)
			return dispatchJoin(ctx, cfg, n, left, right, &chanSink{ctx: ctx, ch: st.ch})
		}()
		close(st.ch)
		st.errc <- err
	}()
	return st.iterator()
}

// dispatchJoin drives the existing join machinery for one bound join
// node.
func dispatchJoin(ctx context.Context, cfg Config, n *JoinNode, left, right *relation.Relation, sink relation.Sink) error {
	memory := cfg.MemoryPages
	if n.Memory > 0 {
		memory = n.Memory
	}
	if n.Shards > 1 {
		var salgo shard.Algorithm
		switch n.Algorithm {
		case AlgoPartition:
			salgo = shard.AlgorithmPartition
		case AlgoSortMerge:
			salgo = shard.AlgorithmSortMerge
		case AlgoNestedLoop:
			salgo = shard.AlgorithmNestedLoop
		default:
			return fmt.Errorf("plan2: unknown algorithm %d", n.Algorithm)
		}
		_, _, err := shard.Join(salgo, left, right, sink, shard.Config{
			Ctx:           ctx,
			Shards:        n.Shards,
			MemoryPages:   memory,
			Weights:       cost.Ratio(cfg.RandomCost),
			Seed:          cfg.Seed,
			TimePredicate: n.Mask,
			Kernel:        n.Kernel,
			Tracer:        cfg.Tracer,
		})
		return err
	}
	switch n.Algorithm {
	case AlgoPartition:
		_, _, err := join.Partition(left, right, sink, join.PartitionConfig{
			Ctx:           ctx,
			MemoryPages:   memory,
			Weights:       cost.Ratio(cfg.RandomCost),
			Rng:           rand.New(rand.NewSource(cfg.Seed)),
			TimePredicate: n.Mask,
			Kernel:        n.Kernel,
			Tracer:        cfg.Tracer,
		})
		return err
	case AlgoSortMerge:
		_, _, err := join.SortMerge(left, right, sink, join.SortMergeConfig{
			Ctx:           ctx,
			MemoryPages:   memory,
			TimePredicate: n.Mask,
			Kernel:        n.Kernel,
			Tracer:        cfg.Tracer,
		})
		return err
	case AlgoNestedLoop:
		_, err := join.NestedLoop(left, right, sink, join.NestedLoopConfig{
			Ctx:           ctx,
			MemoryPages:   memory,
			TimePredicate: n.Mask,
			Kernel:        n.Kernel,
			Tracer:        cfg.Tracer,
		})
		return err
	}
	return fmt.Errorf("plan2: unknown algorithm %d", n.Algorithm)
}

// chanSink bridges the push-style join sink onto the pull-style
// channel, cloning each tuple (the join owns its buffers) and aborting
// the producer when the consumer is gone.
type chanSink struct {
	ctx context.Context
	ch  chan tuple.Tuple
}

// Append implements relation.Sink.
func (s *chanSink) Append(t tuple.Tuple) error {
	select {
	case s.ch <- t.Clone():
		return nil
	case <-s.ctx.Done():
		return &execctx.AbortError{Op: "exec: emit", Err: s.ctx.Err()}
	}
}

// Flush implements relation.Sink.
func (s *chanSink) Flush() error { return nil }

// streamState is the consumer half of a producer-goroutine stage.
type streamState struct {
	ch       chan tuple.Tuple
	errc     chan error
	cancel   context.CancelFunc
	clean    func() error
	finished bool
	err      error
}

// finish waits for the producer after the channel is drained.
func (st *streamState) finish() {
	if st.finished {
		return
	}
	st.finished = true
	st.err = <-st.errc
}

func (st *streamState) iterator() *Iterator {
	next := func() (tuple.Tuple, bool, error) {
		t, ok := <-st.ch
		if ok {
			return t, true, nil
		}
		st.finish()
		return tuple.Tuple{}, false, st.err
	}
	close := func() error {
		if !st.finished {
			// Abandoned mid-stream: cancel the producer and drain; the
			// induced abort is expected, not an error.
			st.cancel()
			for range st.ch {
			}
			st.finish()
			if execctx.IsAbort(st.err) {
				st.err = nil
			}
		}
		st.cancel()
		var err error
		if st.clean != nil {
			err = st.clean()
			st.clean = nil
		}
		return err
	}
	return &Iterator{next: done(next), close: close}
}

// diffIter evaluates the valid-time difference: both inputs
// materialize (the sweep needs sorted spooling), the difference
// materializes through the existing temporal machinery, and the result
// relation streams out lazily, dropped on Close.
func diffIter(cfg Config, n *DiffNode) *Iterator {
	tr := cfg.Tracer
	tr.Begin("diff")
	defer tr.End()
	left, ltemp, err := materialize(cfg, n.Left)
	if err != nil {
		return errIter(err)
	}
	right, rtemp, err := materialize(cfg, n.Right)
	if err != nil {
		cleanup := closers(dropTemp(left, ltemp))
		_ = cleanup()
		return errIter(err)
	}
	cleanInputs := closers(dropTemp(left, ltemp), dropTemp(right, rtemp))
	out, err := temporal.Difference(left, right)
	if cerr := cleanInputs(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return errIter(err)
	}
	it := scanIter(cfg.Ctx, out)
	return &Iterator{next: it.next, close: closers(it.Close, out.Drop)}
}

// aggIter drains its input into the incremental aggregation tree and
// lazily emits one tuple per maximal interval of constant aggregate
// value — the paper's per-chronon COUNT/SUM shape.
func aggIter(cfg Config, n *AggregateNode) *Iterator {
	tr := cfg.Tracer
	tr.Begin("aggregate")
	defer tr.End()
	in := open(cfg, n.Input)
	var tree aggtree.Tree
	var err error
	for {
		t, ok, nerr := in.Next()
		if nerr != nil {
			err = nerr
			break
		}
		if !ok {
			break
		}
		w := int64(1)
		if n.Op == AggSum {
			v := t.Values[n.Col]
			if v.IsNull() {
				continue // SQL semantics: nulls contribute nothing
			}
			w = v.AsInt()
		}
		tree.Insert(t.V, w)
	}
	if cerr := in.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return errIter(err)
	}
	segs := tree.Segments()
	ts := make([]tuple.Tuple, len(segs))
	for i, s := range segs {
		ts[i] = tuple.New(s.Interval, value.Int(s.Value))
	}
	return sliceIter(ts, nil)
}
