// Package plan2 is the logical-plan layer of the query service: it
// binds a parsed query (internal/query) against a catalog of named
// relations into a typed operator DAG, and executes the DAG with a
// streaming pull-based iterator executor over the existing join,
// temporal and aggregation machinery.
//
// Binding resolves every name and type up front — unknown relations,
// unknown columns, literal/column kind mismatches and schema
// incompatibilities all fail before any I/O happens — so a bound plan
// can be cached and re-executed. Plans are immutable after Bind:
// executing one never mutates the DAG, which is what makes the plan
// cache safe under concurrent hits.
package plan2

import (
	"fmt"

	"vtjoin/internal/chronon"
	"vtjoin/internal/join"
	"vtjoin/internal/query"
	"vtjoin/internal/relation"
	"vtjoin/internal/schema"
	"vtjoin/internal/value"
)

// Catalog resolves relation names at bind time.
type Catalog interface {
	// Lookup returns the named relation, or an error when it does not
	// exist.
	Lookup(name string) (*relation.Relation, error)
}

// Algorithm selects a join evaluation strategy.
type Algorithm int

// The join algorithms the language's "using" hint selects.
const (
	AlgoPartition Algorithm = iota
	AlgoSortMerge
	AlgoNestedLoop
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgoPartition:
		return "partition"
	case AlgoSortMerge:
		return "sortmerge"
	case AlgoNestedLoop:
		return "nestedloop"
	}
	return "invalid"
}

// AggOp selects a per-chronon aggregate.
type AggOp int

// The supported aggregates.
const (
	AggCount AggOp = iota
	AggSum
)

// Node is one operator of the bound plan DAG. Implementations are
// immutable after Bind.
type Node interface {
	// Schema is the operator's output schema.
	Schema() *schema.Schema
	// Inputs returns the operator's children (shared scans make the
	// plan a DAG, not a tree).
	Inputs() []Node
}

// ScanNode reads a base relation sequentially.
type ScanNode struct {
	Name string
	Rel  *relation.Relation
}

// Schema implements Node.
func (n *ScanNode) Schema() *schema.Schema { return n.Rel.Schema() }

// Inputs implements Node.
func (n *ScanNode) Inputs() []Node { return nil }

// SelectNode filters its input by a typed predicate.
type SelectNode struct {
	Input Node
	Pred  Pred
}

// Schema implements Node.
func (n *SelectNode) Schema() *schema.Schema { return n.Input.Schema() }

// Inputs implements Node.
func (n *SelectNode) Inputs() []Node { return []Node{n.Input} }

// ProjectNode keeps the columns at the given input indices, in order.
// Projection is row-wise (timestamps pass through untouched); unlike
// the temporal-normalization Project of internal/temporal it does not
// coalesce, so it streams.
type ProjectNode struct {
	Input Node
	Cols  []int
	out   *schema.Schema
}

// Schema implements Node.
func (n *ProjectNode) Schema() *schema.Schema { return n.out }

// Inputs implements Node.
func (n *ProjectNode) Inputs() []Node { return []Node{n.Input} }

// JoinNode is the valid-time natural join of its two inputs (inner
// semantics; tuples match when they agree on all shared columns and
// their intervals satisfy Mask).
type JoinNode struct {
	Left, Right Node
	Plan        *schema.JoinPlan
	Algorithm   Algorithm
	Kernel      join.Kernel
	Mask        chronon.Mask
	// Shards > 1 time-shards the join across private devices.
	Shards int
	// Memory overrides the executor's per-join buffer budget (0 =
	// inherit).
	Memory int
}

// Schema implements Node.
func (n *JoinNode) Schema() *schema.Schema { return n.Plan.Output }

// Inputs implements Node.
func (n *JoinNode) Inputs() []Node { return []Node{n.Left, n.Right} }

// DiffNode is the valid-time difference Left −V Right; both inputs
// must share a schema.
type DiffNode struct {
	Left, Right Node
}

// Schema implements Node.
func (n *DiffNode) Schema() *schema.Schema { return n.Left.Schema() }

// Inputs implements Node.
func (n *DiffNode) Inputs() []Node { return []Node{n.Left, n.Right} }

// AggregateNode computes a per-chronon aggregate over its input on the
// incremental aggregation tree: one output tuple per maximal interval
// of constant aggregate value.
type AggregateNode struct {
	Input Node
	Op    AggOp
	Col   int // summed column index (AggSum only)
	out   *schema.Schema
}

// Schema implements Node.
func (n *AggregateNode) Schema() *schema.Schema { return n.out }

// Inputs implements Node.
func (n *AggregateNode) Inputs() []Node { return []Node{n.Input} }

// BaseRelations records every base relation the plan reads into out,
// keyed by catalog name — the dependency set the plan cache validates
// before reusing a cached plan.
func BaseRelations(n Node, out map[string]*relation.Relation) {
	if sc, ok := n.(*ScanNode); ok {
		out[sc.Name] = sc.Rel
	}
	for _, in := range n.Inputs() {
		BaseRelations(in, out)
	}
}

// binder carries bind state: scans of the same relation resolve to one
// shared node, so the bound plan is a genuine DAG.
type binder struct {
	cat   Catalog
	scans map[string]*ScanNode
}

// Bind resolves and types a parsed pipeline against the catalog,
// returning the root of the bound plan DAG.
func Bind(pipe *query.Pipeline, cat Catalog) (Node, error) {
	b := &binder{cat: cat, scans: make(map[string]*ScanNode)}
	return b.pipeline(pipe)
}

func (b *binder) pipeline(pipe *query.Pipeline) (Node, error) {
	node, err := b.source(pipe.Source)
	if err != nil {
		return nil, err
	}
	for _, st := range pipe.Stages {
		node, err = b.stage(node, st)
		if err != nil {
			return nil, err
		}
	}
	return node, nil
}

func (b *binder) source(src query.Source) (Node, error) {
	switch s := src.(type) {
	case *query.ScanSource:
		if n, ok := b.scans[s.Relation]; ok {
			return n, nil
		}
		rel, err := b.cat.Lookup(s.Relation)
		if err != nil {
			return nil, &query.Error{Line: s.Line, Col: s.Col, Msg: err.Error()}
		}
		n := &ScanNode{Name: s.Relation, Rel: rel}
		b.scans[s.Relation] = n
		return n, nil
	case *query.SubSource:
		return b.pipeline(s.Pipe)
	}
	return nil, fmt.Errorf("plan2: unknown source type %T", src)
}

func (b *binder) stage(input Node, st query.Stage) (Node, error) {
	switch s := st.(type) {
	case *query.SelectStage:
		pred, err := bindPred(s.Pred, input.Schema())
		if err != nil {
			return nil, err
		}
		return &SelectNode{Input: input, Pred: pred}, nil

	case *query.ProjectStage:
		in := input.Schema()
		idx := make([]int, 0, len(s.Columns))
		cols := make([]schema.Column, 0, len(s.Columns))
		for _, name := range s.Columns {
			i := in.Index(name)
			if i < 0 {
				return nil, &query.Error{Line: s.Line, Col: s.Col,
					Msg: fmt.Sprintf("project: no column %q in %v", name, in)}
			}
			idx = append(idx, i)
			cols = append(cols, in.Column(i))
		}
		out, err := schema.New(cols...)
		if err != nil {
			return nil, &query.Error{Line: s.Line, Col: s.Col, Msg: "project: " + err.Error()}
		}
		return &ProjectNode{Input: input, Cols: idx, out: out}, nil

	case *query.JoinStage:
		right, err := b.source(s.Right)
		if err != nil {
			return nil, err
		}
		plan, err := schema.PlanNaturalJoin(input.Schema(), right.Schema())
		if err != nil {
			return nil, &query.Error{Line: s.Line, Col: s.Col, Msg: "join: " + err.Error()}
		}
		n := &JoinNode{
			Left: input, Right: right, Plan: plan,
			Kernel: join.KernelSweep,
			Mask:   chronon.MaskIntersects,
			Shards: s.Hints.Shards,
			Memory: s.Hints.Memory,
		}
		switch s.Hints.Algorithm {
		case "", "partition":
			n.Algorithm = AlgoPartition
		case "sortmerge":
			n.Algorithm = AlgoSortMerge
		case "nestedloop":
			n.Algorithm = AlgoNestedLoop
		default:
			return nil, &query.Error{Line: s.Line, Col: s.Col,
				Msg: fmt.Sprintf("join: unknown algorithm %q", s.Hints.Algorithm)}
		}
		if s.Hints.Kernel == "scan" {
			n.Kernel = join.KernelScan
		}
		switch s.Hints.Predicate {
		case "", "intersects":
			n.Mask = chronon.MaskIntersects
		case "contains":
			n.Mask = chronon.MaskContains
		case "containedin":
			n.Mask = chronon.MaskContainedIn
		case "equal":
			n.Mask = chronon.MaskEqual
		default:
			return nil, &query.Error{Line: s.Line, Col: s.Col,
				Msg: fmt.Sprintf("join: unknown time predicate %q", s.Hints.Predicate)}
		}
		return n, nil

	case *query.DiffStage:
		right, err := b.source(s.Right)
		if err != nil {
			return nil, err
		}
		if !input.Schema().Equal(right.Schema()) {
			return nil, &query.Error{Line: s.Line, Col: s.Col,
				Msg: fmt.Sprintf("diff: schemas differ: %v vs %v", input.Schema(), right.Schema())}
		}
		return &DiffNode{Left: input, Right: right}, nil

	case *query.AggregateStage:
		switch s.Op {
		case "count":
			out, err := schema.New(schema.Column{Name: "count", Kind: value.KindInt})
			if err != nil {
				return nil, err
			}
			return &AggregateNode{Input: input, Op: AggCount, out: out}, nil
		case "sum":
			in := input.Schema()
			i := in.Index(s.Column)
			if i < 0 {
				return nil, &query.Error{Line: s.Line, Col: s.Col,
					Msg: fmt.Sprintf("aggregate: no column %q in %v", s.Column, in)}
			}
			if k := in.Column(i).Kind; k != value.KindInt {
				return nil, &query.Error{Line: s.Line, Col: s.Col,
					Msg: fmt.Sprintf("aggregate: sum over %v column %q (want int)", k, s.Column)}
			}
			out, err := schema.New(schema.Column{Name: "sum", Kind: value.KindInt})
			if err != nil {
				return nil, err
			}
			return &AggregateNode{Input: input, Op: AggSum, Col: i, out: out}, nil
		}
		return nil, &query.Error{Line: s.Line, Col: s.Col,
			Msg: fmt.Sprintf("aggregate: unknown op %q", s.Op)}
	}
	return nil, fmt.Errorf("plan2: unknown stage type %T", st)
}
