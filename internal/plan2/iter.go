package plan2

import (
	"context"

	"vtjoin/internal/execctx"
	"vtjoin/internal/page"
	"vtjoin/internal/relation"
	"vtjoin/internal/tuple"
)

// Iterator is the executor's lazy pull contract: operators are
// composed functionally (each wraps its input's next function in a
// closure), tuples flow one at a time on demand, and Close releases
// whatever the pipeline holds — producer goroutines, temporary
// relations — however far consumption got.
//
// The tuple returned by Next is owned by the caller until the next
// call; retain it beyond that only after Clone.
type Iterator struct {
	next  func() (tuple.Tuple, bool, error)
	close func() error
}

// Next returns the next tuple; ok is false at end of stream. After an
// error or the end of the stream, further calls return the same
// outcome.
func (it *Iterator) Next() (tuple.Tuple, bool, error) { return it.next() }

// Close releases the pipeline's resources. It is idempotent and must
// be called even after a completed or failed stream.
func (it *Iterator) Close() error {
	if it.close == nil {
		return nil
	}
	fn := it.close
	it.close = nil
	return fn()
}

// done wraps next so that after the first error or end-of-stream every
// subsequent call repeats it, keeping operator closures single-shot.
func done(next func() (tuple.Tuple, bool, error)) func() (tuple.Tuple, bool, error) {
	finished := false
	var ferr error
	return func() (tuple.Tuple, bool, error) {
		if finished {
			return tuple.Tuple{}, false, ferr
		}
		t, ok, err := next()
		if err != nil || !ok {
			finished, ferr = true, err
			return tuple.Tuple{}, false, err
		}
		return t, true, nil
	}
}

// scanIter streams a relation in storage order, checking the context
// once per page — the executor's page-granular cancellation boundary.
func scanIter(ctx context.Context, rel *relation.Relation) *Iterator {
	ps := rel.ScanPages()
	pg, err := page.New(rel.Disk().PageSize())
	slot, cnt := 0, 0
	next := func() (tuple.Tuple, bool, error) {
		if err != nil {
			return tuple.Tuple{}, false, err
		}
		for {
			if slot < cnt {
				t, terr := pg.Tuple(slot)
				if terr != nil {
					return tuple.Tuple{}, false, terr
				}
				slot++
				return t, true, nil
			}
			if cerr := execctx.Check(ctx, "exec: scan"); cerr != nil {
				return tuple.Tuple{}, false, cerr
			}
			more, perr := ps.Next(pg)
			if perr != nil {
				return tuple.Tuple{}, false, perr
			}
			if !more {
				return tuple.Tuple{}, false, nil
			}
			slot, cnt = 0, pg.Count()
		}
	}
	return &Iterator{next: done(next)}
}

// filterIter lazily keeps the input tuples satisfying pred.
func filterIter(in *Iterator, pred Pred) *Iterator {
	next := func() (tuple.Tuple, bool, error) {
		for {
			t, ok, err := in.Next()
			if err != nil || !ok {
				return tuple.Tuple{}, false, err
			}
			if pred.Eval(t) {
				return t, true, nil
			}
		}
	}
	return &Iterator{next: done(next), close: in.Close}
}

// mapIter lazily rewrites each input tuple.
func mapIter(in *Iterator, fn func(tuple.Tuple) tuple.Tuple) *Iterator {
	next := func() (tuple.Tuple, bool, error) {
		t, ok, err := in.Next()
		if err != nil || !ok {
			return tuple.Tuple{}, false, err
		}
		return fn(t), true, nil
	}
	return &Iterator{next: done(next), close: in.Close}
}

// sliceIter streams a materialized tuple slice.
func sliceIter(ts []tuple.Tuple, close func() error) *Iterator {
	i := 0
	next := func() (tuple.Tuple, bool, error) {
		if i >= len(ts) {
			return tuple.Tuple{}, false, nil
		}
		t := ts[i]
		i++
		return t, true, nil
	}
	return &Iterator{next: done(next), close: close}
}

// errIter is an iterator that fails immediately — used to surface
// open-time errors through the uniform pull interface.
func errIter(err error) *Iterator {
	return &Iterator{next: func() (tuple.Tuple, bool, error) { return tuple.Tuple{}, false, err }}
}

// closers composes cleanup functions; every one runs, the first error
// wins.
func closers(fns ...func() error) func() error {
	return func() error {
		var first error
		for _, fn := range fns {
			if fn == nil {
				continue
			}
			if err := fn(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
}
