package plan2

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"vtjoin/internal/chronon"
	"vtjoin/internal/disk"
	"vtjoin/internal/execctx"
	"vtjoin/internal/join"
	"vtjoin/internal/query"
	"vtjoin/internal/relation"
	"vtjoin/internal/schema"
	"vtjoin/internal/temporal"
	"vtjoin/internal/testutil"
	"vtjoin/internal/tuple"
	"vtjoin/internal/value"
)

// mapCatalog is the test catalog: a name → relation map.
type mapCatalog map[string]*relation.Relation

func (c mapCatalog) Lookup(name string) (*relation.Relation, error) {
	r, ok := c[name]
	if !ok {
		return nil, fmt.Errorf("no relation %q", name)
	}
	return r, nil
}

func mustSchema(t *testing.T, cols ...schema.Column) *schema.Schema {
	t.Helper()
	s, err := schema.New(cols...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func buildRel(t *testing.T, d *disk.Disk, s *schema.Schema, ts []tuple.Tuple) *relation.Relation {
	t.Helper()
	r := relation.Create(d, s)
	b := r.NewBuilder()
	for _, tp := range ts {
		if err := b.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	return r
}

func iv(lo, hi int64) chronon.Interval { return chronon.New(chronon.Chronon(lo), chronon.Chronon(hi)) }

// runQuery parses, binds and executes q, returning cloned result tuples.
func runQuery(t *testing.T, cfg Config, cat Catalog, q string) []tuple.Tuple {
	t.Helper()
	ts, err := tryQuery(cfg, cat, q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return ts
}

func tryQuery(cfg Config, cat Catalog, q string) ([]tuple.Tuple, error) {
	pipe, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	root, err := Bind(pipe, cat)
	if err != nil {
		return nil, err
	}
	var out []tuple.Tuple
	_, err = Run(cfg, root, func(t tuple.Tuple) error {
		out = append(out, t.Clone())
		return nil
	})
	return out, err
}

func sortTuples(ts []tuple.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}

func equalSets(t *testing.T, got, want []tuple.Tuple, label string) {
	t.Helper()
	sortTuples(got)
	sortTuples(want)
	if len(got) != len(want) {
		t.Fatalf("%s: %d tuples, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: tuple %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// employees is a tiny hand-checkable relation: (name string, dept int).
func employees(t *testing.T, d *disk.Disk) *relation.Relation {
	s := mustSchema(t,
		schema.Column{Name: "dept", Kind: value.KindInt},
		schema.Column{Name: "name", Kind: value.KindString},
	)
	return buildRel(t, d, s, []tuple.Tuple{
		tuple.New(iv(0, 10), value.Int(1), value.String_("ada")),
		tuple.New(iv(5, 20), value.Int(1), value.String_("bob")),
		tuple.New(iv(10, 30), value.Int(2), value.String_("cy")),
		tuple.New(iv(0, 40), value.Int(3), value.Null()),
	})
}

func TestScanSelectProject(t *testing.T) {
	d := disk.New(512)
	cat := mapCatalog{"emp": employees(t, d)}
	cfg := Config{Disk: d}

	got := runQuery(t, cfg, cat, `scan emp | select dept = 1 and vt overlaps [0, 4] | project name`)
	want := []tuple.Tuple{tuple.New(iv(0, 10), value.String_("ada"))}
	equalSets(t, got, want, "select+project")

	// Null comparisons: plain comparison never matches null, "= null" does.
	got = runQuery(t, cfg, cat, `scan emp | select name != "ada"`)
	if len(got) != 2 {
		t.Fatalf("name != ada: %d tuples, want 2 (null must not match)", len(got))
	}
	got = runQuery(t, cfg, cat, `scan emp | select name = null`)
	if len(got) != 1 || got[0].Values[0].AsInt() != 3 {
		t.Fatalf("name = null: got %v", got)
	}

	// Time predicates.
	got = runQuery(t, cfg, cat, `scan emp | select vt during [0, 25]`)
	if len(got) != 2 {
		t.Fatalf("vt during: %d tuples, want 2", len(got))
	}
	got = runQuery(t, cfg, cat, `scan emp | select vt contains [12, 28] | project name`)
	want = []tuple.Tuple{
		tuple.New(iv(10, 30), value.String_("cy")),
		tuple.New(iv(0, 40), value.Null()),
	}
	equalSets(t, got, want, "vt contains")

	// Projection can reorder and duplicate-free subset columns.
	got = runQuery(t, cfg, cat, `scan emp | select name = "bob" | project name, dept`)
	want = []tuple.Tuple{tuple.New(iv(5, 20), value.String_("bob"), value.Int(1))}
	equalSets(t, got, want, "project reorder")
}

func TestBindErrors(t *testing.T) {
	d := disk.New(512)
	cat := mapCatalog{"emp": employees(t, d)}
	cfg := Config{Disk: d}
	cases := []struct {
		q       string
		wantSub string
	}{
		{`scan nosuch`, `no relation "nosuch"`},
		{`scan emp | select salary = 3`, `no column "salary"`},
		{`scan emp | select name = 3`, `is string, literal`},
		{`scan emp | select dept = "x"`, `literal "x" is not`},
		{`scan emp | select dept < true`, `is int`},
		{`scan emp | select name = null and dept >= null`, `only = and !=`},
		{`scan emp | project name, salary`, `no column "salary"`},
		{`scan emp | aggregate sum name`, `want int`},
		{`scan emp | aggregate sum missing`, `no column "missing"`},
		{`scan emp | diff (scan emp | project name)`, `schemas differ`},
	}
	for _, c := range cases {
		_, err := tryQuery(cfg, cat, c.q)
		if err == nil {
			t.Errorf("%q: expected bind error containing %q", c.q, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: error %q, want substring %q", c.q, err, c.wantSub)
		}
	}
}

func TestBindSharesScans(t *testing.T) {
	d := disk.New(512)
	cat := mapCatalog{"emp": employees(t, d)}
	pipe, err := query.Parse(`scan emp | join scan emp`)
	if err != nil {
		t.Fatal(err)
	}
	root, err := Bind(pipe, cat)
	if err != nil {
		t.Fatal(err)
	}
	jn, ok := root.(*JoinNode)
	if !ok {
		t.Fatalf("root is %T, want *JoinNode", root)
	}
	if jn.Left != jn.Right {
		t.Error("self-join did not share the scan node: plan is a tree, want a DAG")
	}
	deps := map[string]*relation.Relation{}
	BaseRelations(root, deps)
	if len(deps) != 1 || deps["emp"] == nil {
		t.Errorf("BaseRelations = %v, want exactly {emp}", deps)
	}
}

// workloadPair builds two joinable generated relations: they share only
// the "key" column (the natural-join attribute), carry a private payload
// column each, and overlap heavily in time so the join is non-trivial.
func workloadPair(t *testing.T, d *disk.Disk) (*relation.Relation, *relation.Relation) {
	t.Helper()
	gen := func(payload string, seed int64) *relation.Relation {
		sch := mustSchema(t,
			schema.Column{Name: "key", Kind: value.KindInt},
			schema.Column{Name: payload, Kind: value.KindInt},
		)
		rng := rand.New(rand.NewSource(seed))
		ts := make([]tuple.Tuple, 0, 300)
		for i := 0; i < 300; i++ {
			start := rng.Int63n(900)
			end := start + 1 + rng.Int63n(100)
			ts = append(ts, tuple.New(iv(start, end),
				value.Int(rng.Int63n(40)), value.Int(int64(i))))
		}
		return buildRel(t, d, sch, ts)
	}
	return gen("a", 7), gen("b", 8)
}

// TestJoinMatchesDirect is the differential core: every algorithm ×
// kernel through the query path must produce exactly the tuple multiset
// the join machinery produces when driven directly.
func TestJoinMatchesDirect(t *testing.T) {
	d := disk.New(1024)
	r, s := workloadPair(t, d)
	cat := mapCatalog{"r": r, "s": s}
	cfg := Config{Disk: d, MemoryPages: 16}

	var want relation.CollectSink
	if _, err := join.NestedLoop(r, s, &want, join.NestedLoopConfig{
		MemoryPages: 16, TimePredicate: chronon.MaskIntersects, Kernel: join.KernelSweep,
	}); err != nil {
		t.Fatal(err)
	}
	if len(want.Tuples) == 0 {
		t.Fatal("reference join is empty; workload spec does not exercise the join")
	}

	for _, algo := range []string{"partition", "sortmerge", "nestedloop"} {
		for _, kernel := range []string{"sweep", "scan"} {
			q := fmt.Sprintf("scan r | join scan s using %s kernel %s", algo, kernel)
			got := runQuery(t, cfg, cat, q)
			equalSets(t, got, append([]tuple.Tuple(nil), want.Tuples...), q)
		}
	}

	// Sharded execution through the language's shards hint.
	got := runQuery(t, cfg, cat, "scan r | join scan s shards 3")
	equalSets(t, got, append([]tuple.Tuple(nil), want.Tuples...), "shards 3")

	// The memory hint must not change results.
	got = runQuery(t, cfg, cat, "scan r | join scan s using sortmerge memory 8")
	equalSets(t, got, append([]tuple.Tuple(nil), want.Tuples...), "memory 8")
}

// TestJoinSubqueryInputs materializes filtered sub-pipelines into the
// join and checks against the equivalent direct evaluation; also
// asserts every temporary relation is dropped.
func TestJoinSubqueryInputs(t *testing.T) {
	d := disk.New(1024)
	r, s := workloadPair(t, d)
	cat := mapCatalog{"r": r, "s": s}
	cfg := Config{Disk: d, MemoryPages: 16}
	base := len(d.LiveFiles())

	got := runQuery(t, cfg, cat,
		`(scan r | select key < 20) | join (scan s | select vt overlaps [0, 500]) using sortmerge`)

	// Reference: filter both sides by hand, then join directly.
	filter := func(rel *relation.Relation, keep func(tuple.Tuple) bool) *relation.Relation {
		all, err := rel.All()
		if err != nil {
			t.Fatal(err)
		}
		var kept []tuple.Tuple
		for _, tp := range all {
			if keep(tp) {
				kept = append(kept, tp)
			}
		}
		return buildRel(t, d, rel.Schema(), kept)
	}
	fr := filter(r, func(tp tuple.Tuple) bool { return tp.Values[0].AsInt() < 20 })
	fs := filter(s, func(tp tuple.Tuple) bool { return tp.V.Overlaps(iv(0, 500)) })
	var want relation.CollectSink
	if _, _, err := join.SortMerge(fr, fs, &want, join.SortMergeConfig{
		MemoryPages: 16, TimePredicate: chronon.MaskIntersects, Kernel: join.KernelSweep,
	}); err != nil {
		t.Fatal(err)
	}
	equalSets(t, got, want.Tuples, "subquery join")

	if err := fr.Drop(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Drop(); err != nil {
		t.Fatal(err)
	}
	if n := len(d.LiveFiles()); n != base {
		t.Errorf("%d live files after query, want %d: temporaries leaked", n, base)
	}
}

func TestDiffMatchesDirect(t *testing.T) {
	d := disk.New(1024)
	r, s := workloadPair(t, d)
	cat := mapCatalog{"r": r, "s": s}
	cfg := Config{Disk: d}
	base := len(d.LiveFiles())

	// Subtract the early keys of r from all of r; both sides project to
	// the shared schema requirement trivially (same relation).
	got := runQuery(t, cfg, cat, "scan r | diff (scan r | select key < 20)")

	all, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	var early []tuple.Tuple
	for _, tp := range all {
		if tp.Values[0].AsInt() < 20 {
			early = append(early, tp)
		}
	}
	fr := buildRel(t, d, r.Schema(), early)
	out, err := temporal.Difference(r, fr)
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Drop(); err != nil {
		t.Fatal(err)
	}
	want, err := out.All()
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Drop(); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("reference difference is empty")
	}
	equalSets(t, got, want, "diff")
	if n := len(d.LiveFiles()); n != base {
		t.Errorf("%d live files after diff, want %d", n, base)
	}
}

func TestAggregateCountAndSum(t *testing.T) {
	d := disk.New(512)
	s := mustSchema(t, schema.Column{Name: "pay", Kind: value.KindInt})
	rel := buildRel(t, d, s, []tuple.Tuple{
		tuple.New(iv(0, 10), value.Int(5)),
		tuple.New(iv(5, 15), value.Int(3)),
		tuple.New(iv(20, 30), value.Null()),
	})
	cat := mapCatalog{"pays": rel}
	cfg := Config{Disk: d}

	got := runQuery(t, cfg, cat, "scan pays | aggregate count")
	want := []tuple.Tuple{
		tuple.New(iv(0, 4), value.Int(1)),
		tuple.New(iv(5, 10), value.Int(2)),
		tuple.New(iv(11, 15), value.Int(1)),
		tuple.New(iv(20, 30), value.Int(1)),
	}
	equalSets(t, got, want, "aggregate count")

	// Sum skips the null contribution entirely.
	got = runQuery(t, cfg, cat, "scan pays | aggregate sum pay")
	want = []tuple.Tuple{
		tuple.New(iv(0, 4), value.Int(5)),
		tuple.New(iv(5, 10), value.Int(8)),
		tuple.New(iv(11, 15), value.Int(3)),
	}
	equalSets(t, got, want, "aggregate sum")
}

// TestComposedPipeline drives a deep pipeline (subquery join → select →
// project → aggregate) end to end, checking the count against a direct
// reference evaluation.
func TestComposedPipeline(t *testing.T) {
	d := disk.New(1024)
	r, s := workloadPair(t, d)
	cat := mapCatalog{"r": r, "s": s}
	cfg := Config{Disk: d, MemoryPages: 16}

	got := runQuery(t, cfg, cat,
		"scan r | join scan s using sortmerge | select key < 10 | project key | aggregate count")

	var joined relation.CollectSink
	if _, _, err := join.SortMerge(r, s, &joined, join.SortMergeConfig{
		MemoryPages: 16, TimePredicate: chronon.MaskIntersects, Kernel: join.KernelSweep,
	}); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, tp := range joined.Tuples {
		if tp.Values[0].AsInt() < 10 {
			total += int64(tp.V.End-tp.V.Start) + 1
		}
	}
	if len(got) == 0 {
		t.Fatal("composed pipeline returned nothing")
	}
	// The aggregate segments partition the joined tuples' chronons:
	// summing count×length over segments equals summing interval
	// lengths over qualifying tuples.
	var seen int64
	for _, tp := range got {
		seen += tp.Values[0].AsInt() * (int64(tp.V.End-tp.V.Start) + 1)
	}
	if seen != total {
		t.Errorf("aggregate mass = %d chronon-tuples, want %d", seen, total)
	}
}

// TestEarlyCloseReleasesEverything abandons a join stream after a few
// tuples: the producer goroutine must terminate and every temporary
// must be dropped — the leak-free cancellation contract.
func TestEarlyCloseReleasesEverything(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	d := disk.New(1024)
	r, s := workloadPair(t, d)
	cat := mapCatalog{"r": r, "s": s}
	base := len(d.LiveFiles())

	pipe, err := query.Parse(`(scan r | select key < 30) | join (scan s | select key < 30)`)
	if err != nil {
		t.Fatal(err)
	}
	root, err := Bind(pipe, mapCatalog(cat))
	if err != nil {
		t.Fatal(err)
	}
	it, err := Open(Config{Disk: d, MemoryPages: 16}, root)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok, err := it.Next(); err != nil || !ok {
			t.Fatalf("pull %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := it.Close(); err != nil {
		t.Fatalf("early Close: %v", err)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if n := len(d.LiveFiles()); n != base {
		t.Errorf("%d live files after early close, want %d", n, base)
	}
}

// TestCancellationAborts cancels the context mid-stream; the pipeline
// must surface an abort error and still clean up fully.
func TestCancellationAborts(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	d := disk.New(1024)
	r, s := workloadPair(t, d)
	cat := mapCatalog{"r": r, "s": s}
	base := len(d.LiveFiles())

	ctx, cancel := context.WithCancel(context.Background())
	pipe, err := query.Parse(`scan r | join scan s using nestedloop`)
	if err != nil {
		t.Fatal(err)
	}
	root, err := Bind(pipe, cat)
	if err != nil {
		t.Fatal(err)
	}
	it, err := Open(Config{Ctx: ctx, Disk: d, MemoryPages: 16}, root)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); err != nil || !ok {
		t.Fatalf("first pull: ok=%v err=%v", ok, err)
	}
	cancel()
	var aborted bool
	for i := 0; i < 1_000_000; i++ {
		_, ok, err := it.Next()
		if err != nil {
			if !execctx.IsAbort(err) {
				t.Fatalf("error %v, want abort", err)
			}
			aborted = true
			break
		}
		if !ok {
			break
		}
	}
	if !aborted {
		t.Error("stream completed despite cancellation")
	}
	if err := it.Close(); err != nil {
		t.Fatalf("Close after abort: %v", err)
	}
	if n := len(d.LiveFiles()); n != base {
		t.Errorf("%d live files after abort, want %d", n, base)
	}
}

// TestPreCancelledScan aborts before any page is read.
func TestPreCancelledScan(t *testing.T) {
	d := disk.New(512)
	cat := mapCatalog{"emp": employees(t, d)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := tryQuery(Config{Ctx: ctx, Disk: d}, cat, "scan emp")
	if !execctx.IsAbort(err) {
		t.Fatalf("error %v, want abort", err)
	}
}

// TestPlanReusableConcurrently executes one bound plan from many
// goroutines at once: plans are immutable after Bind, so results must
// stay correct — this is the property the plan cache relies on.
func TestPlanReusableConcurrently(t *testing.T) {
	d := disk.New(1024)
	r, s := workloadPair(t, d)
	cat := mapCatalog{"r": r, "s": s}
	pipe, err := query.Parse("scan r | join scan s using sortmerge | aggregate count")
	if err != nil {
		t.Fatal(err)
	}
	root, err := Bind(pipe, cat)
	if err != nil {
		t.Fatal(err)
	}
	want, err := collect(Config{Disk: d, MemoryPages: 16}, root)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			got, err := collect(Config{Disk: d, MemoryPages: 16}, root)
			if err == nil && len(got) != len(want) {
				err = fmt.Errorf("%d tuples, want %d", len(got), len(want))
			}
			if err == nil {
				for i := range got {
					if !got[i].Equal(want[i]) {
						err = fmt.Errorf("tuple %d = %v, want %v", i, got[i], want[i])
						break
					}
				}
			}
			errc <- err
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}
}

func collect(cfg Config, root Node) ([]tuple.Tuple, error) {
	var out []tuple.Tuple
	_, err := Run(cfg, root, func(t tuple.Tuple) error {
		out = append(out, t.Clone())
		return nil
	})
	return out, err
}
