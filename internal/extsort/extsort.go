// Package extsort implements external merge sort over on-disk
// relations: run generation using the full memory allocation, followed
// by (M-1)-way merge passes. It is the substrate of the sort-merge
// valid-time join the paper compares against (Section 4.1: "the
// sort-merge algorithm was optimized to make best use of the available
// main memory size").
package extsort

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"vtjoin/internal/execctx"
	"vtjoin/internal/page"
	"vtjoin/internal/prefetch"
	"vtjoin/internal/relation"
	"vtjoin/internal/trace"
	"vtjoin/internal/tuple"
)

// Less orders tuples for the sort.
type Less func(a, b tuple.Tuple) bool

// ByStartTime orders tuples by valid-time start, then end, then
// attribute values — the order used by the sort-merge join (Leung &
// Muntz consider both Vs and Ve orders; the join here uses ascending
// Vs).
func ByStartTime(a, b tuple.Tuple) bool { return a.Compare(b) < 0 }

// Sorted is a sorted relation plus the page-granular catalog metadata
// the merge-join needs to seek by tuple ordinal without I/O.
type Sorted struct {
	Rel *relation.Relation
	// PageStart[i] is the ordinal of the first tuple on page i; a
	// trailing entry holds the total tuple count.
	PageStart []int64
}

// NumTuples returns the sorted relation's cardinality.
func (s *Sorted) NumTuples() int64 { return s.Rel.Tuples() }

// NumPages returns the sorted relation's length in pages, from the
// page catalog (no I/O, no error path).
func (s *Sorted) NumPages() int { return len(s.PageStart) - 1 }

// PageOf returns the page index containing tuple ordinal n.
func (s *Sorted) PageOf(n int64) (int, error) {
	if n < 0 || n >= s.NumTuples() {
		return 0, fmt.Errorf("extsort: ordinal %d out of range [0, %d)", n, s.NumTuples())
	}
	// Last page whose start <= n.
	i := sort.Search(len(s.PageStart)-1, func(i int) bool { return s.PageStart[i+1] > n })
	return i, nil
}

// Drop removes the sorted relation's backing file.
func (s *Sorted) Drop() error { return s.Rel.Drop() }

// Sort sorts r into a new temporary relation using at most memoryPages
// pages of buffer. Run generation reads memoryPages pages at a time,
// sorts them in memory, and writes each run sequentially; merge passes
// then combine up to memoryPages-1 runs at a time (one input page per
// run plus one output page) until a single run remains. All I/O is
// charged to r's device. The input relation is left untouched.
//
// Run-generation reads go through a prefetch pipeline sized against the
// memory budget; SortDepth exposes the depth for callers that need the
// fully synchronous schedule.
//
// The sort checks ctx (nil = never cancelled) once per input page
// during run formation and about once per output page during merges; an
// aborted or failed sort drops every run file it created before
// returning, so no temporary space leaks.
func Sort(ctx context.Context, r *relation.Relation, less Less, memoryPages int) (*Sorted, error) {
	return SortDepth(ctx, r, less, memoryPages, prefetch.DepthFor(memoryPages))
}

// SortDepth is Sort with an explicit prefetch depth for pass-0 run
// generation (0 = synchronous reads on the calling goroutine). The
// input pages are consumed in storage order at every depth, so the
// counted I/O and the resulting sorted relation are identical across
// depths; only wall-clock overlap changes. Merge passes interleave
// reads across many run files under heap control and stay sequential.
func SortDepth(ctx context.Context, r *relation.Relation, less Less, memoryPages, depth int) (*Sorted, error) {
	return SortDepthTrace(ctx, r, less, memoryPages, depth, nil)
}

// SortDepthTrace is SortDepth recording per-phase spans — run
// formation plus each merge pass — on tr (nil disables tracing; the
// sort itself is unchanged). The pass-0 prefetch stream is fully
// drained before the run-formation span closes, so each span's I/O
// attribution is exact.
func SortDepthTrace(ctx context.Context, r *relation.Relation, less Less, memoryPages, depth int, tr *trace.Tracer) (*Sorted, error) {
	if memoryPages < 3 {
		return nil, fmt.Errorf("extsort: need at least 3 buffer pages, got %d", memoryPages)
	}
	d := r.Disk()

	// dropRuns releases run files on abort paths, best-effort: a failed
	// sort must not leak device space, and a secondary removal error
	// must not mask the original failure.
	dropRuns := func(rs []*Sorted) {
		for _, run := range rs {
			if run != nil {
				_ = run.Drop()
			}
		}
	}

	// Pass 0: run generation.
	tr.Begin("run formation")
	var runs []*Sorted
	buf := make([]tuple.Tuple, 0, 1024)
	pagesInBuf := 0
	flushRun := func() error {
		if len(buf) == 0 {
			return nil
		}
		sort.SliceStable(buf, func(i, j int) bool { return less(buf[i], buf[j]) })
		run := relation.CreateFormat(d, r.Schema(), r.Format())
		b := run.NewBuilder()
		for _, t := range buf {
			if err := b.AppendUnchecked(t); err != nil {
				_ = run.Drop()
				return err
			}
		}
		if err := b.Flush(); err != nil {
			_ = run.Drop()
			return err
		}
		runs = append(runs, &Sorted{Rel: run, PageStart: b.PageStarts()})
		buf = buf[:0]
		pagesInBuf = 0
		return nil
	}
	rPages, err := r.Pages()
	if err != nil {
		tr.End()
		return nil, err
	}
	pool := page.NewPool(d.PageSize())
	stream := prefetch.NewStream(ctx, pool, rPages, depth, func(idx int, dst *page.Page) error {
		return r.ReadPage(idx, dst)
	})
	defer stream.Close()
	for {
		pg, err := stream.Next()
		if err != nil {
			dropRuns(runs)
			tr.End()
			return nil, err
		}
		if pg == nil {
			break
		}
		ts, err := pg.Tuples()
		stream.Release(pg)
		if err != nil {
			dropRuns(runs)
			tr.End()
			return nil, err
		}
		buf = append(buf, ts...)
		pagesInBuf++
		if pagesInBuf == memoryPages {
			if err := flushRun(); err != nil {
				dropRuns(runs)
				tr.End()
				return nil, err
			}
		}
	}
	if err := flushRun(); err != nil {
		dropRuns(runs)
		tr.End()
		return nil, err
	}
	tr.SetAttr("pagesIn", rPages)
	tr.SetAttr("runs", len(runs))
	tr.SetAttr("prefetchDepth", depth)
	tr.End()
	if len(runs) == 0 {
		// Empty input: an empty sorted relation.
		empty := relation.CreateFormat(d, r.Schema(), r.Format())
		return &Sorted{Rel: empty, PageStart: []int64{0}}, nil
	}

	// Merge passes: fan-in of memoryPages-1.
	fanIn := memoryPages - 1
	for pass := 1; len(runs) > 1; pass++ {
		tr.Begin(fmt.Sprintf("merge pass %d", pass))
		runsIn := len(runs)
		var next []*Sorted
		for lo := 0; lo < len(runs); lo += fanIn {
			hi := lo + fanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			merged, err := mergeRuns(ctx, runs[lo:hi], less)
			if err != nil {
				// The un-merged tail of this pass and the outputs already
				// produced are all still on disk; release them.
				dropRuns(runs[lo:])
				dropRuns(next)
				tr.End()
				return nil, err
			}
			for _, run := range runs[lo:hi] {
				if err := run.Drop(); err != nil {
					dropRuns(runs[hi:])
					dropRuns(next)
					_ = merged.Drop()
					tr.End()
					return nil, err
				}
			}
			next = append(next, merged)
		}
		runs = next
		tr.SetAttr("fanIn", fanIn)
		tr.SetAttr("runsIn", runsIn)
		tr.SetAttr("runsOut", len(runs))
		tr.End()
	}
	return runs[0], nil
}

type mergeCursor struct {
	sc   *relation.Scanner
	cur  tuple.Tuple
	done bool
}

func (c *mergeCursor) advance() error {
	t, ok, err := c.sc.Next()
	if err != nil {
		return err
	}
	if !ok {
		c.done = true
		return nil
	}
	c.cur = t
	return nil
}

type mergeHeap struct {
	items []*mergeCursor
	less  Less
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	return h.less(h.items[i].cur, h.items[j].cur)
}
func (h *mergeHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x any)    { h.items = append(h.items, x.(*mergeCursor)) }
func (h *mergeHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// mergeCheckEvery is how many merged tuples go by between cancellation
// checks — about one output page's worth at the default page size, so
// an abort is noticed within roughly one page boundary.
const mergeCheckEvery = 32

func mergeRuns(ctx context.Context, runs []*Sorted, less Less) (*Sorted, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("extsort: merge of zero runs")
	}
	d := runs[0].Rel.Disk()
	out := relation.CreateFormat(d, runs[0].Rel.Schema(), runs[0].Rel.Format())
	b := out.NewBuilder()
	// On any failure the partially written output must not leak.
	fail := func(err error) (*Sorted, error) {
		_ = out.Drop()
		return nil, err
	}

	h := &mergeHeap{less: less}
	for _, run := range runs {
		c := &mergeCursor{sc: run.Rel.Scan()}
		if err := c.advance(); err != nil {
			return fail(err)
		}
		if !c.done {
			h.items = append(h.items, c)
		}
	}
	heap.Init(h)
	for n := 0; h.Len() > 0; n++ {
		if n%mergeCheckEvery == 0 {
			if err := execctx.Check(ctx, "extsort: merge"); err != nil {
				return fail(err)
			}
		}
		c := h.items[0]
		if err := b.AppendUnchecked(c.cur); err != nil {
			return fail(err)
		}
		if err := c.advance(); err != nil {
			return fail(err)
		}
		if c.done {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
	}
	if err := b.Flush(); err != nil {
		return fail(err)
	}
	return &Sorted{Rel: out, PageStart: b.PageStarts()}, nil
}
