package extsort

import (
	"context"
	"errors"
	"testing"

	"vtjoin/internal/disk"
	"vtjoin/internal/execctx"
	"vtjoin/internal/page"
)

// The external sort creates temporary files at two points — run
// formation and merge-pass outputs — and each error path must drop
// everything created so far. These regressions pin the cleanup per
// path by striking a fault (or cancelling) at the exact phase and then
// diffing the device's live files.

func TestSortDropsRunsOnMidRunFormationFault(t *testing.T) {
	// Run formation writes the sorted runs; a permanent write fault
	// landing past the input load strikes while some runs already exist
	// on disk. They must all be dropped.
	probe := disk.New(page.DefaultSize)
	buildRandom(t, probe, 400, 5)
	loadWrites := int(probe.Counters().RandWrites + probe.Counters().SeqWrites)

	faulty, fs := disk.NewFaulty(page.DefaultSize, disk.FaultPlan{
		Faults: []disk.Fault{
			// Several runs in: each run is ~4 pages at memoryPages=4.
			{Kind: disk.FaultPermanentWrite, Page: -1, After: loadWrites + 9},
		},
	})
	r := buildRandom(t, faulty, 400, 5)
	before := faulty.LiveFiles()

	_, err := Sort(nil, r, ByStartTime, 4)
	if err == nil {
		t.Fatal("sort succeeded over a permanently failing device")
	}
	var ioe *disk.IOError
	if !errors.As(err, &ioe) {
		t.Fatalf("error %v (type %T) does not wrap *disk.IOError", err, err)
	}
	if fs.Stats().PermanentWrites == 0 {
		t.Fatal("fault never fired")
	}
	if after := faulty.LiveFiles(); len(after) != len(before) {
		t.Fatalf("run files leaked on the run-formation error path: %v -> %v", before, after)
	}
}

func TestSortDropsRunsOnMidMergeFault(t *testing.T) {
	// The merge pass reads completed runs and writes merged outputs; a
	// read fault placed past the input scan strikes inside the merge,
	// where the input runs and a partial output coexist. All of them
	// must be dropped. Building only writes, so the sort's reads are the
	// input scan (run formation, inputPages reads) followed by the
	// merge's run reads — a strike past inputPages lands in the merge.
	const tuples = 4000 // >> memoryPages pages of input, forcing a real merge
	probe := disk.New(page.DefaultSize)
	inputPages := mustPages(t, buildRandom(t, probe, tuples, 6))
	if inputPages <= 4 {
		t.Fatalf("input fits in memory (%d pages); no merge pass to strike", inputPages)
	}
	faulty, fs := disk.NewFaulty(page.DefaultSize, disk.FaultPlan{
		Faults: []disk.Fault{
			{Kind: disk.FaultPermanentRead, Page: -1, After: inputPages + 3},
		},
	})
	fr := buildRandom(t, faulty, tuples, 6)
	before := faulty.LiveFiles()

	_, err := Sort(nil, fr, ByStartTime, 4)
	if err == nil {
		t.Fatal("sort succeeded over a permanently failing device")
	}
	var ioe *disk.IOError
	if !errors.As(err, &ioe) {
		t.Fatalf("error %v (type %T) does not wrap *disk.IOError", err, err)
	}
	if fs.Stats().PermanentReads == 0 {
		t.Fatal("fault never fired")
	}
	if after := faulty.LiveFiles(); len(after) != len(before) {
		t.Fatalf("run files leaked on the merge error path: %v -> %v", before, after)
	}
}

func TestSortDropsRunsOnCancellation(t *testing.T) {
	// Cancellation mid-sort takes the same cleanup paths as a device
	// error; cancel immediately so the abort lands in run formation.
	d := disk.New(page.DefaultSize)
	r := buildRandom(t, d, 400, 7)
	before := d.LiveFiles()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Sort(ctx, r, ByStartTime, 4)
	if err == nil {
		t.Fatal("sort completed under a cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	var abort *execctx.AbortError
	if !errors.As(err, &abort) {
		t.Fatalf("error %v (type %T) does not wrap *execctx.AbortError", err, err)
	}
	if after := d.LiveFiles(); len(after) != len(before) {
		t.Fatalf("run files leaked on cancellation: %v -> %v", before, after)
	}
}
