package extsort

import (
	"math/rand"
	"sort"
	"testing"

	"vtjoin/internal/chronon"
	"vtjoin/internal/disk"
	"vtjoin/internal/page"
	"vtjoin/internal/relation"
	"vtjoin/internal/schema"
	"vtjoin/internal/tuple"
	"vtjoin/internal/value"
)

var testSchema = schema.MustNew(schema.Column{Name: "id", Kind: value.KindInt})

func mustPages(t testing.TB, r *relation.Relation) int {
	t.Helper()
	n, err := r.Pages()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func buildRandom(t *testing.T, d *disk.Disk, n int, seed int64) *relation.Relation {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	r := relation.Create(d, testSchema)
	b := r.NewBuilder()
	for i := 0; i < n; i++ {
		s := chronon.Chronon(rng.Int63n(100000))
		iv := chronon.New(s, s+chronon.Chronon(rng.Int63n(500)))
		if err := b.Append(tuple.New(iv, value.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	return r
}

func assertSorted(t *testing.T, s *Sorted, wantCount int64) {
	t.Helper()
	all, err := s.Rel.All()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(all)) != wantCount {
		t.Fatalf("sorted relation has %d tuples, want %d", len(all), wantCount)
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return ByStartTime(all[i], all[j]) }) {
		t.Fatal("output not sorted")
	}
}

func TestSortValidation(t *testing.T) {
	d := disk.New(page.DefaultSize)
	r := buildRandom(t, d, 10, 1)
	if _, err := Sort(nil, r, ByStartTime, 2); err == nil {
		t.Fatal("memoryPages=2 accepted")
	}
}

func TestSortEmpty(t *testing.T) {
	d := disk.New(page.DefaultSize)
	r := relation.Create(d, testSchema)
	s, err := Sort(nil, r, ByStartTime, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTuples() != 0 || len(s.PageStart) != 1 {
		t.Fatalf("empty sort: %d tuples, catalog %v", s.NumTuples(), s.PageStart)
	}
}

func TestSortSingleRun(t *testing.T) {
	d := disk.New(page.DefaultSize)
	r := buildRandom(t, d, 50, 2)
	// Memory exceeds the relation: one run, no merge pass.
	s, err := Sort(nil, r, ByStartTime, mustPages(t, r)+3)
	if err != nil {
		t.Fatal(err)
	}
	assertSorted(t, s, r.Tuples())
}

func TestSortMultiRunSinglePass(t *testing.T) {
	d := disk.New(page.DefaultSize)
	r := buildRandom(t, d, 3000, 3)
	m := mustPages(t, r)/3 + 1 // ~3 runs, fan-in covers them in one pass
	s, err := Sort(nil, r, ByStartTime, m)
	if err != nil {
		t.Fatal(err)
	}
	assertSorted(t, s, r.Tuples())
}

func TestSortMultiPass(t *testing.T) {
	d := disk.New(page.DefaultSize)
	r := buildRandom(t, d, 4000, 4)
	// Tiny memory: many runs, fan-in 2 forces multiple merge passes.
	s, err := Sort(nil, r, ByStartTime, 3)
	if err != nil {
		t.Fatal(err)
	}
	assertSorted(t, s, r.Tuples())
}

func TestSortPreservesMultiset(t *testing.T) {
	d := disk.New(page.DefaultSize)
	r := buildRandom(t, d, 2000, 5)
	want, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Sort(nil, r, ByStartTime, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Rel.All()
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(want, func(i, j int) bool { return want[i].Compare(want[j]) < 0 })
	sort.Slice(got, func(i, j int) bool { return got[i].Compare(got[j]) < 0 })
	if len(got) != len(want) {
		t.Fatalf("cardinality changed: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("multiset changed at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestPageStartCatalog(t *testing.T) {
	d := disk.New(page.DefaultSize)
	r := buildRandom(t, d, 1500, 6)
	s, err := Sort(nil, r, ByStartTime, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.PageStart) != s.NumPages()+1 {
		t.Fatalf("catalog has %d entries for %d pages", len(s.PageStart), s.NumPages())
	}
	if s.NumPages() != mustPages(t, s.Rel) {
		t.Fatalf("NumPages() = %d, relation has %d", s.NumPages(), mustPages(t, s.Rel))
	}
	if s.PageStart[0] != 0 || s.PageStart[len(s.PageStart)-1] != s.NumTuples() {
		t.Fatalf("catalog endpoints: %v", s.PageStart)
	}
	// Verify the catalog against the physical pages.
	pg := page.MustNew(page.DefaultSize)
	var ordinal int64
	for i := 0; i < s.NumPages(); i++ {
		if s.PageStart[i] != ordinal {
			t.Fatalf("PageStart[%d] = %d, want %d", i, s.PageStart[i], ordinal)
		}
		if err := s.Rel.ReadPage(i, pg); err != nil {
			t.Fatal(err)
		}
		ordinal += int64(pg.Count())
	}
	// PageOf agrees.
	for i := 0; i < s.NumPages(); i++ {
		if got, err := s.PageOf(s.PageStart[i]); err != nil || got != i {
			t.Fatalf("PageOf(%d) = %d (%v), want %d", s.PageStart[i], got, err, i)
		}
		if got, err := s.PageOf(s.PageStart[i+1] - 1); err != nil || got != i {
			t.Fatalf("PageOf(%d) = %d (%v), want %d", s.PageStart[i+1]-1, got, err, i)
		}
	}
}

func TestPageOfRejectsOutOfRange(t *testing.T) {
	d := disk.New(page.DefaultSize)
	r := buildRandom(t, d, 10, 7)
	s, err := Sort(nil, r, ByStartTime, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PageOf(-1); err == nil {
		t.Fatal("PageOf(-1) accepted")
	}
	if _, err := s.PageOf(s.NumTuples()); err == nil {
		t.Fatalf("PageOf(%d) accepted", s.NumTuples())
	}
}

func TestSortLeavesInputIntact(t *testing.T) {
	d := disk.New(page.DefaultSize)
	r := buildRandom(t, d, 500, 8)
	before, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Sort(nil, r, ByStartTime, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drop()
	after, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatal("input relation changed")
	}
	for i := range before {
		if !before[i].Equal(after[i]) {
			t.Fatal("input relation changed")
		}
	}
}

func TestSortIOCost(t *testing.T) {
	// Single-pass sort should cost ~2 reads + 2 writes of the data
	// volume: read input, write runs, read runs, write output.
	d := disk.New(page.DefaultSize)
	r := buildRandom(t, d, 3000, 9)
	m := mustPages(t, r)/3 + 2
	d.ResetCounters()
	s, err := Sort(nil, r, ByStartTime, m)
	if err != nil {
		t.Fatal(err)
	}
	c := d.Counters()
	n := int64(mustPages(t, r))
	reads, writes := c.RandReads+c.SeqReads, c.RandWrites+c.SeqWrites
	if reads < 2*n-2 || reads > 2*n+2 {
		t.Fatalf("reads = %d, want about %d", reads, 2*n)
	}
	// Output pages may differ slightly from input pages due to
	// repacking; allow small slack.
	outN := int64(s.NumPages())
	if writes < n+outN-2 || writes > n+outN+2 {
		t.Fatalf("writes = %d, want about %d", writes, n+outN)
	}
	// Stability of sequential access: most I/O is sequential.
	if c.Random() > int64(16) {
		t.Fatalf("too many random accesses for a single-pass sort: %v", c)
	}
}

func TestByStartTimeOrder(t *testing.T) {
	a := tuple.New(chronon.New(1, 10), value.Int(1))
	b := tuple.New(chronon.New(2, 3), value.Int(2))
	c := tuple.New(chronon.New(1, 12), value.Int(3))
	if !ByStartTime(a, b) || ByStartTime(b, a) {
		t.Fatal("start-time order broken")
	}
	if !ByStartTime(a, c) {
		t.Fatal("ties on start must order by end")
	}
}
