// Package query implements the temporal query language served by
// vtserve: a lexer, a recursive-descent parser producing an AST, and a
// canonical renderer whose output is the plan-cache key.
//
// A query is a pipeline: a relation scan followed by stages separated
// by '|', after the parser → planner → executor split of janus-datalog
// ("From Volcano to Lazy Sequences"):
//
//	scan r
//	  | select key = 3 and vt overlaps [10, 40]
//	  | join (scan s | select active = true) using sortmerge kernel scan
//	  | diff scan revoked
//	  | project key, name
//	  | aggregate count
//
// Keywords are case-insensitive; relation and column names are
// case-sensitive identifiers. '#' starts a comment running to end of
// line. Within predicates the words and/or/not/vt (any case) are
// reserved and cannot name columns.
package query

import (
	"fmt"
	"strconv"
	"strings"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tFloat
	tString
	tPipe   // |
	tLParen // (
	tRParen // )
	tLBrack // [
	tRBrack // ]
	tComma  // ,
	tEq     // =
	tNe     // !=
	tLt     // <
	tLe     // <=
	tGt     // >
	tGe     // >=
)

func (k tokKind) String() string {
	switch k {
	case tEOF:
		return "end of query"
	case tIdent:
		return "identifier"
	case tInt:
		return "integer"
	case tFloat:
		return "float"
	case tString:
		return "string"
	case tPipe:
		return "'|'"
	case tLParen:
		return "'('"
	case tRParen:
		return "')'"
	case tLBrack:
		return "'['"
	case tRBrack:
		return "']'"
	case tComma:
		return "','"
	case tEq:
		return "'='"
	case tNe:
		return "'!='"
	case tLt:
		return "'<'"
	case tLe:
		return "'<='"
	case tGt:
		return "'>'"
	case tGe:
		return "'>='"
	}
	return "invalid token"
}

type token struct {
	kind tokKind
	text string  // ident text (case preserved) or string value
	i    int64   // tInt
	f    float64 // tFloat
	line int
	col  int
}

func (t token) describe() string {
	switch t.kind {
	case tIdent:
		return fmt.Sprintf("%q", t.text)
	case tString:
		return fmt.Sprintf("string %q", t.text)
	case tInt:
		return fmt.Sprintf("integer %d", t.i)
	case tFloat:
		return fmt.Sprintf("float %g", t.f)
	}
	return t.kind.String()
}

// keyword returns the lower-cased ident text, or "" for non-idents —
// the form keywords are matched in.
func (t token) keyword() string {
	if t.kind != tIdent {
		return ""
	}
	return strings.ToLower(t.text)
}

// Error is a syntax or compile error with its position in the query
// text.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("query: %d:%d: %s", e.Line, e.Col, e.Msg) }

func errAt(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src       string
	pos       int
	line, col int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpace() {
	for {
		c, ok := l.peekByte()
		if !ok {
			return
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#': // comment to end of line
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentRest(c byte) bool { return isIdentStart(c) || ('0' <= c && c <= '9') }

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// next scans one token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	line, col := l.line, l.col
	c, ok := l.peekByte()
	if !ok {
		return token{kind: tEOF, line: line, col: col}, nil
	}
	switch {
	case isIdentStart(c):
		start := l.pos
		for {
			c, ok := l.peekByte()
			if !ok || !isIdentRest(c) {
				break
			}
			l.advance()
		}
		return token{kind: tIdent, text: l.src[start:l.pos], line: line, col: col}, nil
	case isDigit(c), c == '-':
		return l.number(line, col)
	case c == '"':
		return l.stringLit(line, col)
	}
	l.advance()
	mk := func(k tokKind) (token, error) { return token{kind: k, line: line, col: col}, nil }
	switch c {
	case '|':
		return mk(tPipe)
	case '(':
		return mk(tLParen)
	case ')':
		return mk(tRParen)
	case '[':
		return mk(tLBrack)
	case ']':
		return mk(tRBrack)
	case ',':
		return mk(tComma)
	case '=':
		return mk(tEq)
	case '!':
		if c, ok := l.peekByte(); ok && c == '=' {
			l.advance()
			return mk(tNe)
		}
		return token{}, errAt(line, col, "unexpected '!' (want '!=')")
	case '<':
		if c, ok := l.peekByte(); ok && c == '=' {
			l.advance()
			return mk(tLe)
		}
		return mk(tLt)
	case '>':
		if c, ok := l.peekByte(); ok && c == '=' {
			l.advance()
			return mk(tGe)
		}
		return mk(tGt)
	}
	return token{}, errAt(line, col, "unexpected character %q", string(rune(c)))
}

func (l *lexer) number(line, col int) (token, error) {
	start := l.pos
	if c, _ := l.peekByte(); c == '-' {
		l.advance()
		if c, ok := l.peekByte(); !ok || !isDigit(c) {
			return token{}, errAt(line, col, "unexpected '-' (want a number)")
		}
	}
	isFloat := false
	for {
		c, ok := l.peekByte()
		if !ok {
			break
		}
		if isDigit(c) {
			l.advance()
			continue
		}
		if (c == '.' || c == 'e' || c == 'E') ||
			(isFloat && (c == '+' || c == '-') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E')) {
			isFloat = true
			l.advance()
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, errAt(line, col, "bad float %q", text)
		}
		return token{kind: tFloat, f: f, line: line, col: col}, nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return token{}, errAt(line, col, "bad integer %q", text)
	}
	return token{kind: tInt, i: i, line: line, col: col}, nil
}

func (l *lexer) stringLit(line, col int) (token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		c, ok := l.peekByte()
		if !ok || c == '\n' {
			return token{}, errAt(line, col, "unterminated string")
		}
		l.advance()
		switch c {
		case '"':
			return token{kind: tString, text: b.String(), line: line, col: col}, nil
		case '\\':
			e, ok := l.peekByte()
			if !ok {
				return token{}, errAt(line, col, "unterminated string")
			}
			l.advance()
			switch e {
			case '"', '\\':
				b.WriteByte(e)
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return token{}, errAt(line, col, `bad escape \%s in string`, string(rune(e)))
			}
		default:
			b.WriteByte(c)
		}
	}
}
