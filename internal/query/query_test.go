package query

import (
	"strings"
	"testing"
)

func TestNormalizeCanonicalForms(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"scan r", "scan r"},
		{"  SCAN   r  ", "scan r"},
		{"scan r | select key = 3", "scan r | select key = 3"},
		{"scan r|SELECT key=3", "scan r | select key = 3"},
		{"scan r | select key = 3 and vt overlaps [1, 10]",
			"scan r | select key = 3 and vt overlaps [1, 10]"},
		{"scan r | select NOT (a = 1 or b = 2)",
			"scan r | select not (a = 1 or b = 2)"},
		{"scan r | select vt during [beginning, forever]",
			"scan r | select vt during [beginning, forever]"},
		{"scan r | project a , b,c", "scan r | project a, b, c"},
		{"scan r | join scan s", "scan r | join scan s"},
		{"scan r | join (scan s)", "scan r | join scan s"},
		{"scan r | join ( scan s | select k = 1 )",
			"scan r | join (scan s | select k = 1)"},
		// Hint variants: defaults elided, order fixed.
		{"scan r | join scan s using partition kernel sweep on intersects",
			"scan r | join scan s"},
		{"scan r | join scan s kernel scan using sortmerge",
			"scan r | join scan s using sortmerge kernel scan"},
		{"scan r | join scan s memory 64 shards 4 on contains",
			"scan r | join scan s on contains shards 4 memory 64"},
		{"scan r | diff (scan s)", "scan r | diff scan s"},
		{"scan r | aggregate COUNT", "scan r | aggregate count"},
		{"scan r | aggregate sum  pay", "scan r | aggregate sum pay"},
		{"scan r | select name = \"x\\\"y\"", `scan r | select name = "x\"y"`},
		{"scan r | select f > -1.5", "scan r | select f > -1.5"},
		{"scan r # load\n | select ok = true # filter", "scan r | select ok = true"},
		{"(scan r | select a = 1) | join (scan s | select b = 2) using nestedloop",
			"(scan r | select a = 1) | join (scan s | select b = 2) using nestedloop"},
	}
	for _, c := range cases {
		got, err := Normalize(c.in)
		if err != nil {
			t.Errorf("Normalize(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
		// Canonical forms are fixed points.
		again, err := Normalize(got)
		if err != nil {
			t.Errorf("Normalize(%q) (canonical): %v", got, err)
		} else if again != got {
			t.Errorf("canonical form not a fixed point: %q -> %q", got, again)
		}
	}
}

func TestNormalizeCollisions(t *testing.T) {
	// Every variant group must map to one cache key.
	groups := [][]string{
		{
			"scan r | join scan s",
			"SCAN r | JOIN (scan s)",
			"scan r\n  | join scan s using partition",
			"scan r | join scan s kernel sweep",
			"scan r | join scan s using partition kernel sweep on intersects",
		},
		{
			"scan r | select key = 3 and vt overlaps [1, 10]",
			"scan r | SELECT (key = 3) AND (VT OVERLAPS [1, 10])",
			"scan r|select key=3 and vt overlaps [ 1 , 10 ]",
		},
	}
	for _, g := range groups {
		base, err := Normalize(g[0])
		if err != nil {
			t.Fatalf("Normalize(%q): %v", g[0], err)
		}
		for _, v := range g[1:] {
			got, err := Normalize(v)
			if err != nil {
				t.Errorf("Normalize(%q): %v", v, err)
				continue
			}
			if got != base {
				t.Errorf("Normalize(%q) = %q, want collision with %q = %q", v, got, g[0], base)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in      string
		wantSub string
	}{
		{"", "expected 'scan"},
		{"scan", "relation name"},
		{"scan r |", "expected a stage"},
		{"scan r | frobnicate", "expected a stage"},
		{"scan r | select", "expected a predicate"},
		{"scan r | select key", "comparison operator"},
		{"scan r | select key = ", "expected a literal"},
		{"scan r | select vt near [1, 2]", "after 'vt'"},
		{"scan r | select vt overlaps [9, 2]", "empty interval"},
		{"scan r | select vt overlaps [1 2]", "','"},
		{"scan r | join", "expected 'scan"},
		{"scan r | join scan s using quantum", "unknown algorithm"},
		{"scan r | join scan s kernel turbo", "unknown kernel"},
		{"scan r | join scan s on sometimes", "unknown time predicate"},
		{"scan r | join scan s shards 0", "out of range"},
		{"scan r | join scan s memory 2", "out of range"},
		{"scan r | join scan s using partition using sortmerge", "duplicate"},
		{"scan r | aggregate median", "'count' or 'sum"},
		{"scan r | aggregate sum", "column name"},
		{"scan r | project", "column name"},
		{"scan r extra", "unexpected"},
		{"scan r | select name = \"unterminated", "unterminated string"},
		{"scan r | select a ! b", "'!'"},
		{"(scan r | join (scan s)", "')'"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q, got nil", c.in, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.in, err, c.wantSub)
		}
	}
}

func TestErrorsCarryPosition(t *testing.T) {
	_, err := Parse("scan r\n | select key ~ 3")
	if err == nil {
		t.Fatal("expected error")
	}
	qe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if qe.Line != 2 {
		t.Errorf("error line = %d, want 2 (%v)", qe.Line, err)
	}
}
