package query

import (
	"strconv"
	"strings"

	"vtjoin/internal/chronon"
)

// Pipeline is a parsed query: a source followed by stages. It is the
// AST root the planner binds.
type Pipeline struct {
	Source Source
	Stages []Stage
}

// Source produces tuples: a base-relation scan or a parenthesized
// sub-pipeline.
type Source interface{ canonSource(b *strings.Builder) }

// ScanSource reads a named base relation.
type ScanSource struct {
	Relation string
	// Pos locates the relation name, for bind-time errors.
	Line, Col int
}

// SubSource is a parenthesized sub-pipeline.
type SubSource struct{ Pipe *Pipeline }

// Stage is one '|'-separated operator application.
type Stage interface{ canonStage(b *strings.Builder) }

// SelectStage filters tuples by a predicate.
type SelectStage struct{ Pred Expr }

// ProjectStage keeps the named columns, in order, coalescing the
// result (valid-time projection).
type ProjectStage struct {
	Columns   []string
	Line, Col int
}

// JoinStage is the valid-time natural join against another source,
// with optional evaluation hints.
type JoinStage struct {
	Right     Source
	Hints     Hints
	Line, Col int
}

// DiffStage is the valid-time difference against another source.
type DiffStage struct {
	Right     Source
	Line, Col int
}

// AggregateStage is per-chronon aggregation: "count" or "sum <col>",
// one result tuple per maximal interval of constant value.
type AggregateStage struct {
	Op        string // "count" or "sum"
	Column    string // sum only
	Line, Col int
}

// Hints are a join stage's optional evaluation knobs. Zero values mean
// "use the default" and are elided from the canonical form, so a query
// spelling a default explicitly normalizes to the same cache key as
// one omitting it.
type Hints struct {
	Algorithm string // "partition" (default), "sortmerge", "nestedloop"
	Kernel    string // "sweep" (default), "scan"
	Predicate string // "intersects" (default), "contains", "containedin", "equal"
	Shards    int    // > 1 time-shards the join
	Memory    int    // per-join buffer pages override
}

// Expr is a selection predicate.
type Expr interface {
	// canonExpr renders the canonical form; prec is the enclosing
	// precedence (or=1, and=2, not=3) deciding parenthesization.
	canonExpr(b *strings.Builder, prec int)
}

// LogicExpr combines two predicates with "and" or "or".
type LogicExpr struct {
	Op   string // "and" or "or"
	L, R Expr
}

// NotExpr negates a predicate.
type NotExpr struct{ E Expr }

// CompareExpr compares a column against a literal.
type CompareExpr struct {
	Column    string
	Op        string // "=", "!=", "<", "<=", ">", ">="
	Lit       Literal
	Line, Col int
}

// TimeExpr constrains the tuple's valid-time interval against a
// literal interval: overlaps, contains (tuple ⊇ literal), during
// (tuple ⊆ literal), or equals.
type TimeExpr struct {
	Op        string // "overlaps", "contains", "during", "equals"
	Ivl       chronon.Interval
	Line, Col int
}

// LitKind tags a literal.
type LitKind int

// The literal kinds.
const (
	LitInt LitKind = iota
	LitFloat
	LitString
	LitBool
	LitNull
)

// Literal is an untyped literal value; the planner types it against
// the column it is compared to.
type Literal struct {
	Kind  LitKind
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

func (l Literal) canon(b *strings.Builder) {
	switch l.Kind {
	case LitInt:
		b.WriteString(strconv.FormatInt(l.Int, 10))
	case LitFloat:
		b.WriteString(strconv.FormatFloat(l.Float, 'g', -1, 64))
	case LitString:
		b.WriteString(strconv.Quote(l.Str))
	case LitBool:
		b.WriteString(strconv.FormatBool(l.Bool))
	case LitNull:
		b.WriteString("null")
	}
}

// String renders the literal canonically.
func (l Literal) String() string {
	var b strings.Builder
	l.canon(&b)
	return b.String()
}

// Canonical renders the pipeline in canonical form: lower-case
// keywords, single spaces, hints in fixed order with defaults elided,
// minimal parentheses. Two queries with equal canonical forms are the
// same query; the plan cache keys on this string.
func (p *Pipeline) Canonical() string {
	var b strings.Builder
	p.canon(&b)
	return b.String()
}

func (p *Pipeline) canon(b *strings.Builder) {
	p.Source.canonSource(b)
	for _, st := range p.Stages {
		b.WriteString(" | ")
		st.canonStage(b)
	}
}

func (s *ScanSource) canonSource(b *strings.Builder) {
	b.WriteString("scan ")
	b.WriteString(s.Relation)
}

func (s *SubSource) canonSource(b *strings.Builder) {
	// A sub-pipeline that is a bare scan needs no parentheses; render
	// it as the scan itself so "(scan x)" and "scan x" collide.
	if len(s.Pipe.Stages) == 0 {
		if sc, ok := s.Pipe.Source.(*ScanSource); ok {
			sc.canonSource(b)
			return
		}
		s.Pipe.Source.canonSource(b)
		return
	}
	b.WriteByte('(')
	s.Pipe.canon(b)
	b.WriteByte(')')
}

func (s *SelectStage) canonStage(b *strings.Builder) {
	b.WriteString("select ")
	s.Pred.canonExpr(b, 0)
}

func (s *ProjectStage) canonStage(b *strings.Builder) {
	b.WriteString("project ")
	b.WriteString(strings.Join(s.Columns, ", "))
}

func (s *JoinStage) canonStage(b *strings.Builder) {
	b.WriteString("join ")
	s.Right.canonSource(b)
	if s.Hints.Algorithm != "" && s.Hints.Algorithm != "partition" {
		b.WriteString(" using ")
		b.WriteString(s.Hints.Algorithm)
	}
	if s.Hints.Kernel != "" && s.Hints.Kernel != "sweep" {
		b.WriteString(" kernel ")
		b.WriteString(s.Hints.Kernel)
	}
	if s.Hints.Predicate != "" && s.Hints.Predicate != "intersects" {
		b.WriteString(" on ")
		b.WriteString(s.Hints.Predicate)
	}
	if s.Hints.Shards > 1 {
		b.WriteString(" shards ")
		b.WriteString(strconv.Itoa(s.Hints.Shards))
	}
	if s.Hints.Memory > 0 {
		b.WriteString(" memory ")
		b.WriteString(strconv.Itoa(s.Hints.Memory))
	}
}

func (s *DiffStage) canonStage(b *strings.Builder) {
	b.WriteString("diff ")
	s.Right.canonSource(b)
}

func (s *AggregateStage) canonStage(b *strings.Builder) {
	b.WriteString("aggregate ")
	b.WriteString(s.Op)
	if s.Op == "sum" {
		b.WriteByte(' ')
		b.WriteString(s.Column)
	}
}

func (e *LogicExpr) canonExpr(b *strings.Builder, prec int) {
	self := 1 // or
	if e.Op == "and" {
		self = 2
	}
	if self < prec {
		b.WriteByte('(')
	}
	e.L.canonExpr(b, self)
	b.WriteByte(' ')
	b.WriteString(e.Op)
	b.WriteByte(' ')
	// Right child at self+1: chains re-associate left, so "a and b and
	// c" parses and renders identically regardless of author grouping.
	e.R.canonExpr(b, self+1)
	if self < prec {
		b.WriteByte(')')
	}
}

func (e *NotExpr) canonExpr(b *strings.Builder, prec int) {
	b.WriteString("not ")
	e.E.canonExpr(b, 3)
}

func (e *CompareExpr) canonExpr(b *strings.Builder, prec int) {
	b.WriteString(e.Column)
	b.WriteByte(' ')
	b.WriteString(e.Op)
	b.WriteByte(' ')
	e.Lit.canon(b)
}

func (e *TimeExpr) canonExpr(b *strings.Builder, prec int) {
	b.WriteString("vt ")
	b.WriteString(e.Op)
	b.WriteString(" [")
	writeChronon(b, e.Ivl.Start)
	b.WriteString(", ")
	writeChronon(b, e.Ivl.End)
	b.WriteByte(']')
}

func writeChronon(b *strings.Builder, c chronon.Chronon) {
	switch c {
	case chronon.Beginning:
		b.WriteString("beginning")
	case chronon.Forever:
		b.WriteString("forever")
	case chronon.Now:
		b.WriteString("now")
	default:
		b.WriteString(strconv.FormatInt(int64(c), 10))
	}
}
