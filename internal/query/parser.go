package query

import (
	"vtjoin/internal/chronon"
)

// Parse parses a query text into its AST.
func Parse(text string) (*Pipeline, error) {
	p := &parser{lx: newLexer(text)}
	if err := p.next(); err != nil {
		return nil, err
	}
	pipe, err := p.pipeline()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tEOF {
		return nil, errAt(p.tok.line, p.tok.col, "unexpected %s after query", p.tok.describe())
	}
	return pipe, nil
}

// Normalize parses text and returns its canonical form — the
// plan-cache key. Whitespace, comments, keyword case, redundant
// parentheses and default-valued hints all normalize away.
func Normalize(text string) (string, error) {
	pipe, err := Parse(text)
	if err != nil {
		return "", err
	}
	return pipe.Canonical(), nil
}

type parser struct {
	lx  *lexer
	tok token
}

func (p *parser) next() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// expect consumes the current token, which must be of kind k.
func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.tok
	if t.kind != k {
		return t, errAt(t.line, t.col, "expected %s, got %s", what, t.describe())
	}
	return t, p.next()
}

// ident consumes an identifier token.
func (p *parser) ident(what string) (token, error) { return p.expect(tIdent, what) }

// atKeyword reports whether the current token is the given keyword.
func (p *parser) atKeyword(kw string) bool { return p.tok.keyword() == kw }

// pipeline := source ('|' stage)*
func (p *parser) pipeline() (*Pipeline, error) {
	src, err := p.source()
	if err != nil {
		return nil, err
	}
	pipe := &Pipeline{Source: src}
	for p.tok.kind == tPipe {
		if err := p.next(); err != nil {
			return nil, err
		}
		st, err := p.stage()
		if err != nil {
			return nil, err
		}
		pipe.Stages = append(pipe.Stages, st)
	}
	return pipe, nil
}

// source := 'scan' ident | '(' pipeline ')'
func (p *parser) source() (Source, error) {
	switch {
	case p.atKeyword("scan"):
		if err := p.next(); err != nil {
			return nil, err
		}
		t, err := p.ident("a relation name after 'scan'")
		if err != nil {
			return nil, err
		}
		return &ScanSource{Relation: t.text, Line: t.line, Col: t.col}, nil
	case p.tok.kind == tLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		pipe, err := p.pipeline()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen, "')' closing the sub-query"); err != nil {
			return nil, err
		}
		return &SubSource{Pipe: pipe}, nil
	}
	return nil, errAt(p.tok.line, p.tok.col, "expected 'scan <relation>' or a parenthesized sub-query, got %s", p.tok.describe())
}

func (p *parser) stage() (Stage, error) {
	t := p.tok
	switch t.keyword() {
	case "select":
		if err := p.next(); err != nil {
			return nil, err
		}
		pred, err := p.predicate()
		if err != nil {
			return nil, err
		}
		return &SelectStage{Pred: pred}, nil
	case "project":
		if err := p.next(); err != nil {
			return nil, err
		}
		var cols []string
		for {
			c, err := p.ident("a column name")
			if err != nil {
				return nil, err
			}
			cols = append(cols, c.text)
			if p.tok.kind != tComma {
				break
			}
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		return &ProjectStage{Columns: cols, Line: t.line, Col: t.col}, nil
	case "join":
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.source()
		if err != nil {
			return nil, err
		}
		hints, err := p.hints()
		if err != nil {
			return nil, err
		}
		return &JoinStage{Right: right, Hints: hints, Line: t.line, Col: t.col}, nil
	case "diff":
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.source()
		if err != nil {
			return nil, err
		}
		return &DiffStage{Right: right, Line: t.line, Col: t.col}, nil
	case "aggregate":
		if err := p.next(); err != nil {
			return nil, err
		}
		op := p.tok.keyword()
		switch op {
		case "count":
			if err := p.next(); err != nil {
				return nil, err
			}
			return &AggregateStage{Op: "count", Line: t.line, Col: t.col}, nil
		case "sum":
			if err := p.next(); err != nil {
				return nil, err
			}
			c, err := p.ident("a column name after 'sum'")
			if err != nil {
				return nil, err
			}
			return &AggregateStage{Op: "sum", Column: c.text, Line: t.line, Col: t.col}, nil
		}
		return nil, errAt(p.tok.line, p.tok.col, "expected 'count' or 'sum <column>' after 'aggregate', got %s", p.tok.describe())
	}
	return nil, errAt(t.line, t.col, "expected a stage (select, project, join, diff or aggregate), got %s", t.describe())
}

// hints := ('using' algo | 'kernel' k | 'on' pred | 'shards' n | 'memory' n)*
func (p *parser) hints() (Hints, error) {
	var h Hints
	seen := map[string]bool{}
	for {
		kw := p.tok.keyword()
		switch kw {
		case "using", "kernel", "on", "shards", "memory":
		default:
			return h, nil
		}
		at := p.tok
		if seen[kw] {
			return h, errAt(at.line, at.col, "duplicate %q hint", kw)
		}
		seen[kw] = true
		if err := p.next(); err != nil {
			return h, err
		}
		switch kw {
		case "using":
			t, err := p.ident("an algorithm after 'using'")
			if err != nil {
				return h, err
			}
			switch v := t.keyword(); v {
			case "partition", "sortmerge", "nestedloop":
				h.Algorithm = v
			default:
				return h, errAt(t.line, t.col, "unknown algorithm %q (want partition, sortmerge or nestedloop)", t.text)
			}
		case "kernel":
			t, err := p.ident("a kernel after 'kernel'")
			if err != nil {
				return h, err
			}
			switch v := t.keyword(); v {
			case "sweep", "scan":
				h.Kernel = v
			default:
				return h, errAt(t.line, t.col, "unknown kernel %q (want sweep or scan)", t.text)
			}
		case "on":
			t, err := p.ident("a time predicate after 'on'")
			if err != nil {
				return h, err
			}
			switch v := t.keyword(); v {
			case "intersects", "contains", "containedin", "equal":
				h.Predicate = v
			default:
				return h, errAt(t.line, t.col, "unknown time predicate %q (want intersects, contains, containedin or equal)", t.text)
			}
		case "shards":
			t, err := p.expect(tInt, "a shard count after 'shards'")
			if err != nil {
				return h, err
			}
			if t.i < 1 || t.i > 1<<20 {
				return h, errAt(t.line, t.col, "shard count %d out of range", t.i)
			}
			h.Shards = int(t.i)
		case "memory":
			t, err := p.expect(tInt, "a page count after 'memory'")
			if err != nil {
				return h, err
			}
			if t.i < 4 || t.i > 1<<30 {
				return h, errAt(t.line, t.col, "memory %d pages out of range (want >= 4)", t.i)
			}
			h.Memory = int(t.i)
		}
	}
}

// predicate := and ('or' and)*
func (p *parser) predicate() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &LogicExpr{Op: "or", L: l, R: r}
	}
	return l, nil
}

// and := unary ('and' unary)*
func (p *parser) andExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &LogicExpr{Op: "and", L: l, R: r}
	}
	return l, nil
}

// unary := 'not' unary | '(' predicate ')' | 'vt' timecmp | column cmp literal
func (p *parser) unaryExpr() (Expr, error) {
	t := p.tok
	switch {
	case p.atKeyword("not"):
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	case t.kind == tLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.predicate()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen, "')' closing the predicate"); err != nil {
			return nil, err
		}
		return e, nil
	case p.atKeyword("vt"):
		return p.timeExpr()
	case t.kind == tIdent:
		return p.compareExpr()
	}
	return nil, errAt(t.line, t.col, "expected a predicate, got %s", t.describe())
}

func (p *parser) timeExpr() (Expr, error) {
	vt := p.tok
	if err := p.next(); err != nil {
		return nil, err
	}
	op := p.tok.keyword()
	switch op {
	case "overlaps", "contains", "during", "equals":
	default:
		return nil, errAt(p.tok.line, p.tok.col, "expected overlaps, contains, during or equals after 'vt', got %s", p.tok.describe())
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tLBrack, "'[' opening an interval"); err != nil {
		return nil, err
	}
	lo, err := p.chrononLit()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tComma, "',' between interval endpoints"); err != nil {
		return nil, err
	}
	hi, err := p.chrononLit()
	if err != nil {
		return nil, err
	}
	closing := p.tok
	if _, err := p.expect(tRBrack, "']' closing the interval"); err != nil {
		return nil, err
	}
	if lo > hi {
		return nil, errAt(closing.line, closing.col, "empty interval [%d, %d]", lo, hi)
	}
	return &TimeExpr{Op: op, Ivl: chronon.New(lo, hi), Line: vt.line, Col: vt.col}, nil
}

func (p *parser) chrononLit() (chronon.Chronon, error) {
	t := p.tok
	switch {
	case t.kind == tInt:
		if err := p.next(); err != nil {
			return 0, err
		}
		return chronon.Chronon(t.i), nil
	case t.keyword() == "beginning":
		if err := p.next(); err != nil {
			return 0, err
		}
		return chronon.Beginning, nil
	case t.keyword() == "forever":
		if err := p.next(); err != nil {
			return 0, err
		}
		return chronon.Forever, nil
	case t.keyword() == "now":
		if err := p.next(); err != nil {
			return 0, err
		}
		return chronon.Now, nil
	}
	return 0, errAt(t.line, t.col, "expected a chronon (integer, beginning, forever or now), got %s", t.describe())
}

func (p *parser) compareExpr() (Expr, error) {
	col := p.tok
	if err := p.next(); err != nil {
		return nil, err
	}
	var op string
	switch p.tok.kind {
	case tEq:
		op = "="
	case tNe:
		op = "!="
	case tLt:
		op = "<"
	case tLe:
		op = "<="
	case tGt:
		op = ">"
	case tGe:
		op = ">="
	default:
		return nil, errAt(p.tok.line, p.tok.col, "expected a comparison operator after column %q, got %s", col.text, p.tok.describe())
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	lit, err := p.literal()
	if err != nil {
		return nil, err
	}
	return &CompareExpr{Column: col.text, Op: op, Lit: lit, Line: col.line, Col: col.col}, nil
}

func (p *parser) literal() (Literal, error) {
	t := p.tok
	switch {
	case t.kind == tInt:
		return Literal{Kind: LitInt, Int: t.i}, p.next()
	case t.kind == tFloat:
		return Literal{Kind: LitFloat, Float: t.f}, p.next()
	case t.kind == tString:
		return Literal{Kind: LitString, Str: t.text}, p.next()
	case t.keyword() == "true":
		return Literal{Kind: LitBool, Bool: true}, p.next()
	case t.keyword() == "false":
		return Literal{Kind: LitBool, Bool: false}, p.next()
	case t.keyword() == "null":
		return Literal{Kind: LitNull}, p.next()
	}
	return Literal{}, errAt(t.line, t.col, "expected a literal (integer, float, string, true, false or null), got %s", t.describe())
}
