package partition

import (
	"context"
	"fmt"

	"vtjoin/internal/chronon"
	"vtjoin/internal/disk"
	"vtjoin/internal/execctx"
	"vtjoin/internal/page"
	"vtjoin/internal/relation"
	"vtjoin/internal/schema"
	"vtjoin/internal/tuple"
)

// Partitioned is a relation physically divided into partition files,
// one per partitioning interval. Each tuple is stored exactly once, in
// the last partition it overlaps (Section 3.3) — long-lived tuples are
// not replicated; the join migrates them at evaluation time.
type Partitioned struct {
	Part   Partitioning
	Schema *schema.Schema

	d      *disk.Disk
	format page.Format // page codec of the partition files (inherited from the source relation)
	files  []disk.FileID
	pages  []int
	tuples []int64
	// minStart[i] is the smallest valid-time start among tuples stored
	// in partition i (Forever when empty). Because tuples are placed by
	// their *last* overlapping partition, a tuple relevant to a given
	// time range may be stored arbitrarily far to the right; minStart
	// lets incremental delta-joins skip partitions whose every stored
	// tuple begins after the probe interval ends.
	minStart []chronon.Chronon
}

// DoPartitioning is the paper's doPartitioning: Grace-partition r using
// the given partitioning. The relation is scanned once; each tuple is
// routed to the in-memory bucket page of its last overlapping
// partition, and bucket pages are flushed to that partition's file as
// they fill (Kitsuregawa et al. 1983). Following Section 3.2, one
// buffer page is reserved for the input scan and one bucket page per
// partition is assumed to fit in memory ("we assume that the number of
// partitions is small, and therefore, that sufficient main memory is
// available to perform the partitioning").
//
// The pass checks ctx between input pages (nil = never cancelled) and
// aborts with an *execctx.AbortError; an aborted or failed pass drops
// every partition file it created before returning.
func DoPartitioning(ctx context.Context, r *relation.Relation, part Partitioning) (*Partitioned, error) {
	p := newPartitioned(r, part)
	if err := p.fill(ctx, r); err != nil {
		// Release the partition files: a failed pass must not leak
		// device space.
		_ = p.Drop()
		return nil, err
	}
	return p, nil
}

// DoPartitioningPair Grace-partitions r and s under the same
// partitioning, running the two passes concurrently — the passes scan
// disjoint input files and flush to disjoint partition files, so their
// per-file access sequences (and therefore the counted I/O) are
// identical to two back-to-back sequential passes. Both sets of
// partition files are created up front on the caller's goroutine, which
// keeps file-ID assignment deterministic regardless of scheduling.
// Both fill goroutines check ctx between input pages and recover their
// own panics, so a cancelled or crashing pass joins cleanly: the
// goroutines exit, the error surfaces on the caller's goroutine, and
// all partition files of both sides are dropped.
func DoPartitioningPair(ctx context.Context, r, s *relation.Relation, part Partitioning) (*Partitioned, *Partitioned, error) {
	rp := newPartitioned(r, part)
	sp := newPartitioned(s, part)
	errs := make(chan error, 2)
	pass := func(p *Partitioned, rel *relation.Relation) {
		var err error
		defer func() { errs <- err }()
		defer execctx.RecoverTo("partition: fill", &err)
		err = p.fill(ctx, rel)
	}
	go pass(rp, r)
	go pass(sp, s)
	var firstErr error
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		_ = rp.Drop()
		_ = sp.Drop()
		return nil, nil, firstErr
	}
	return rp, sp, nil
}

// newPartitioned allocates the partition files and bookkeeping for one
// Grace pass. Files are created here, before any concurrent work, so
// IDs are assigned in a deterministic order.
func newPartitioned(r *relation.Relation, part Partitioning) *Partitioned {
	d := r.Disk()
	n := part.N()
	p := &Partitioned{
		Part:     part,
		Schema:   r.Schema(),
		d:        d,
		format:   r.Format(),
		files:    make([]disk.FileID, n),
		pages:    make([]int, n),
		tuples:   make([]int64, n),
		minStart: make([]chronon.Chronon, n),
	}
	for i := range p.minStart {
		p.minStart[i] = chronon.Forever
	}
	for i := range p.files {
		p.files[i] = d.Create()
	}
	return p
}

// fill runs the Grace scan: route every record of r to the in-memory
// bucket page of its last overlapping partition, flushing bucket pages
// as they fill. fill only touches r's file (reads, in storage order)
// and p's own partition files (appends), so concurrent fills over
// disjoint relations never share a file.
func (p *Partitioned) fill(ctx context.Context, r *relation.Relation) error {
	d := p.d
	n := p.Part.N()
	buckets := make([]*page.Page, n)
	for i := range buckets {
		buckets[i] = page.MustNewFormat(d.PageSize(), p.format)
	}
	in := page.MustNew(d.PageSize())
	ps := r.ScanPages()
	for {
		if err := execctx.Check(ctx, "partition: fill"); err != nil {
			return err
		}
		ok, err := ps.Next(in)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for s := 0; s < in.Count(); s++ {
			iv, err := in.RecordInterval(s)
			if err != nil {
				return fmt.Errorf("partition: page record %d: %w", s, err)
			}
			i := p.Part.Last(iv)
			ok, err := in.CopyRecordTo(s, buckets[i])
			if err != nil {
				return err
			}
			if !ok {
				if err := p.flushBucket(i, buckets[i]); err != nil {
					return err
				}
				if ok, err = in.CopyRecordTo(s, buckets[i]); err != nil {
					return err
				} else if !ok {
					return fmt.Errorf("partition: record %d does not fit an empty page", s)
				}
			}
			p.tuples[i]++
			if iv.Start < p.minStart[i] {
				p.minStart[i] = iv.Start
			}
		}
	}
	for i, b := range buckets {
		if b.Count() > 0 {
			if err := p.flushBucket(i, b); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *Partitioned) flushBucket(i int, b *page.Page) error {
	if _, err := p.d.Append(p.files[i], b); err != nil {
		return err
	}
	p.pages[i]++
	b.Reset()
	return nil
}

// N returns the number of partitions.
func (p *Partitioned) N() int { return len(p.files) }

// Format returns the page codec of the partition files (inherited from
// the source relation at partitioning time).
func (p *Partitioned) Format() page.Format { return p.format }

// Pages returns the number of disk pages in partition i.
func (p *Partitioned) Pages(i int) int { return p.pages[i] }

// Tuples returns the number of tuples stored in partition i.
func (p *Partitioned) Tuples(i int) int64 { return p.tuples[i] }

// TotalTuples returns the number of tuples across all partitions.
func (p *Partitioned) TotalTuples() int64 {
	var t int64
	for _, n := range p.tuples {
		t += n
	}
	return t
}

// TotalPages returns the number of pages across all partitions.
func (p *Partitioned) TotalPages() int {
	t := 0
	for _, n := range p.pages {
		t += n
	}
	return t
}

// ReadPage reads page idx of partition i into dst (a counted I/O).
func (p *Partitioned) ReadPage(i, idx int, dst *page.Page) error {
	return p.d.Read(p.files[i], idx, dst)
}

// ReadAll materializes every tuple of partition i (counted I/O: one
// random seek plus sequential reads).
func (p *Partitioned) ReadAll(i int) ([]tuple.Tuple, error) {
	out := make([]tuple.Tuple, 0, p.tuples[i])
	pg := page.MustNew(p.d.PageSize())
	for idx := 0; idx < p.pages[i]; idx++ {
		if err := p.ReadPage(i, idx, pg); err != nil {
			return nil, err
		}
		ts, err := pg.Tuples()
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
	}
	return out, nil
}

// MinStart returns the smallest valid-time start among partition i's
// stored tuples (Forever when the partition is empty).
func (p *Partitioned) MinStart(i int) chronon.Chronon { return p.minStart[i] }

// Insert appends tuple t to its last overlapping partition, filling the
// partition's trailing page if there is room (read-modify-write) and
// appending a fresh page otherwise. The base-relation simplicity of
// updates under no-replication placement is one of the paper's stated
// advantages over the replication strategy of Leung & Muntz.
func (p *Partitioned) Insert(t tuple.Tuple) error {
	if err := t.CheckAgainst(p.Schema); err != nil {
		return err
	}
	i := p.Part.Last(t.V)
	pg := page.MustNewFormat(p.d.PageSize(), p.format)
	if p.pages[i] > 0 {
		last := p.pages[i] - 1
		if err := p.d.Read(p.files[i], last, pg); err != nil {
			return err
		}
		ok, err := pg.AppendTuple(t)
		if err != nil {
			return err
		}
		if ok {
			if err := p.d.Write(p.files[i], last, pg); err != nil {
				return err
			}
			p.noteInsert(i, t)
			return nil
		}
		pg.Reset()
	}
	ok, err := pg.AppendTuple(t)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("partition: tuple does not fit an empty page")
	}
	if _, err := p.d.Append(p.files[i], pg); err != nil {
		return err
	}
	p.pages[i]++
	p.noteInsert(i, t)
	return nil
}

func (p *Partitioned) noteInsert(i int, t tuple.Tuple) {
	p.tuples[i]++
	if t.V.Start < p.minStart[i] {
		p.minStart[i] = t.V.Start
	}
}

// Drop removes all partition files. Removal is best-effort across the
// whole set — one failing file must not strand the rest — and the first
// failure is reported. Dropping twice is a no-op.
func (p *Partitioned) Drop() error {
	var first error
	for _, f := range p.files {
		if err := p.d.Remove(f); err != nil && first == nil {
			first = err
		}
	}
	p.files = nil
	return first
}
