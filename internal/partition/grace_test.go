package partition

import (
	"math/rand"
	"testing"

	"vtjoin/internal/chronon"
	"vtjoin/internal/disk"
	"vtjoin/internal/page"
	"vtjoin/internal/relation"
	"vtjoin/internal/schema"
	"vtjoin/internal/tuple"
	"vtjoin/internal/value"
)

var testSchema = schema.MustNew(schema.Column{Name: "id", Kind: value.KindInt})

func buildRel(t *testing.T, d *disk.Disk, ivs []chronon.Interval) *relation.Relation {
	t.Helper()
	r := relation.Create(d, testSchema)
	b := r.NewBuilder()
	for i, iv := range ivs {
		if err := b.Append(tuple.New(iv, value.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDoPartitioningLastOverlapPlacement(t *testing.T) {
	d := disk.New(page.DefaultSize)
	p := mustCuts(t, 9, 19) // partitions: ...-9, 10-19, 20-...
	ivs := []chronon.Interval{
		chronon.New(0, 5),   // stored in 0
		chronon.New(12, 14), // stored in 1
		chronon.New(25, 30), // stored in 2
		chronon.New(5, 15),  // overlaps 0,1 -> stored in 1
		chronon.New(0, 25),  // overlaps all -> stored in 2
	}
	r := buildRel(t, d, ivs)
	pt, err := DoPartitioning(nil, r, p)
	if err != nil {
		t.Fatal(err)
	}
	defer pt.Drop()

	wantCounts := []int64{1, 2, 2}
	for i, want := range wantCounts {
		if got := pt.Tuples(i); got != want {
			t.Fatalf("partition %d holds %d tuples, want %d", i, got, want)
		}
	}
	// Verify each tuple landed in its last overlapping partition.
	for i := 0; i < pt.N(); i++ {
		ts, err := pt.ReadAll(i)
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range ts {
			if got := p.Last(tp.V); got != i {
				t.Fatalf("tuple %v stored in partition %d, but its last overlap is %d", tp, i, got)
			}
		}
	}
}

func TestDoPartitioningPreservesEveryTuple(t *testing.T) {
	d := disk.New(page.DefaultSize)
	rng := rand.New(rand.NewSource(4))
	var ivs []chronon.Interval
	for i := 0; i < 3000; i++ {
		s := chronon.Chronon(rng.Intn(10000))
		ivs = append(ivs, chronon.New(s, s+chronon.Chronon(rng.Intn(3000))))
	}
	r := buildRel(t, d, ivs)
	p := mustCuts(t, 1000, 2500, 5000, 7500)
	pt, err := DoPartitioning(nil, r, p)
	if err != nil {
		t.Fatal(err)
	}
	defer pt.Drop()

	if pt.TotalTuples() != r.Tuples() {
		t.Fatalf("partitioned %d tuples, relation has %d", pt.TotalTuples(), r.Tuples())
	}
	// Collect ids from all partitions; every id must appear exactly once
	// (no replication, no loss).
	seen := make(map[int64]int)
	for i := 0; i < pt.N(); i++ {
		ts, err := pt.ReadAll(i)
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range ts {
			seen[tp.Values[0].AsInt()]++
		}
	}
	if len(seen) != len(ivs) {
		t.Fatalf("saw %d distinct tuples, want %d", len(seen), len(ivs))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("tuple %d appears %d times (replication!)", id, n)
		}
	}
}

func TestDoPartitioningEmptyRelation(t *testing.T) {
	d := disk.New(page.DefaultSize)
	r := relation.Create(d, testSchema)
	pt, err := DoPartitioning(nil, r, mustCuts(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	if pt.TotalTuples() != 0 || pt.TotalPages() != 0 {
		t.Fatal("empty relation produced non-empty partitions")
	}
}

func TestDoPartitioningSinglePartition(t *testing.T) {
	d := disk.New(page.DefaultSize)
	r := buildRel(t, d, []chronon.Interval{chronon.New(0, 1), chronon.New(5, 9)})
	pt, err := DoPartitioning(nil, r, Single())
	if err != nil {
		t.Fatal(err)
	}
	if pt.N() != 1 || pt.Tuples(0) != 2 {
		t.Fatalf("N=%d tuples=%d", pt.N(), pt.Tuples(0))
	}
}

func TestDoPartitioningIOPattern(t *testing.T) {
	d := disk.New(page.DefaultSize)
	var ivs []chronon.Interval
	for i := 0; i < 2000; i++ {
		ivs = append(ivs, chronon.At(chronon.Chronon(i%1000)))
	}
	r := buildRel(t, d, ivs)
	d.ResetCounters()
	pt, err := DoPartitioning(nil, r, mustCuts(t, 250, 500, 750))
	if err != nil {
		t.Fatal(err)
	}
	c := d.Counters()
	// Input side: one linear scan of the relation.
	if c.RandReads != 1 || c.SeqReads != int64(mustPages(t, r)-1) {
		t.Fatalf("input reads: %v, want linear scan of %d pages", c, mustPages(t, r))
	}
	// Output side: every partition page written exactly once.
	if got := c.RandWrites + c.SeqWrites; got != int64(pt.TotalPages()) {
		t.Fatalf("wrote %d pages, partitions hold %d", got, pt.TotalPages())
	}
}

func TestPartitionedReadAllIsSequentialPerPartition(t *testing.T) {
	d := disk.New(page.DefaultSize)
	var ivs []chronon.Interval
	for i := 0; i < 4000; i++ {
		ivs = append(ivs, chronon.At(chronon.Chronon(i%100)))
	}
	r := buildRel(t, d, ivs)
	pt, err := DoPartitioning(nil, r, mustCuts(t, 49))
	if err != nil {
		t.Fatal(err)
	}
	d.ResetCounters()
	if _, err := pt.ReadAll(0); err != nil {
		t.Fatal(err)
	}
	c := d.Counters()
	if c.RandReads != 1 || c.SeqReads != int64(pt.Pages(0)-1) {
		t.Fatalf("partition read pattern %v for %d pages; want 1 random + rest sequential", c, pt.Pages(0))
	}
}
