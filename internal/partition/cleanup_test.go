package partition

import (
	"context"
	"errors"
	"testing"

	"vtjoin/internal/disk"
	"vtjoin/internal/execctx"
	"vtjoin/internal/page"
	"vtjoin/internal/testutil"
)

// Grace partitioning creates one file per partition up front; every
// early-error path (device fault or cancellation, in the single and
// paired passes) must remove all of them. These regressions diff the
// device's live files around each failing call.

func loadIO(t *testing.T, n int, span int64) (reads, writes int) {
	t.Helper()
	d := disk.New(page.DefaultSize)
	buildUniform(t, d, n, span)
	c := d.Counters()
	return int(c.RandReads + c.SeqReads), int(c.RandWrites + c.SeqWrites)
}

func TestDoPartitioningDropsFilesOnWriteFault(t *testing.T) {
	const n, span = 2000, 10000
	_, loadWrites := loadIO(t, n, span)
	faulty, fs := disk.NewFaulty(page.DefaultSize, disk.FaultPlan{
		Faults: []disk.Fault{
			// Strike after a few partition pages have been written, so
			// files with real content exist when the pass dies.
			{Kind: disk.FaultPermanentWrite, Page: -1, After: loadWrites + 3},
		},
	})
	r := buildUniform(t, faulty, n, span)
	before := faulty.LiveFiles()

	_, err := DoPartitioning(nil, r, mustCuts(t, 2500, 5000, 7500))
	if err == nil {
		t.Fatal("partitioning succeeded over a permanently failing device")
	}
	var ioe *disk.IOError
	if !errors.As(err, &ioe) {
		t.Fatalf("error %v (type %T) does not wrap *disk.IOError", err, err)
	}
	if fs.Stats().PermanentWrites == 0 {
		t.Fatal("fault never fired")
	}
	if after := faulty.LiveFiles(); len(after) != len(before) {
		t.Fatalf("partition files leaked on the error path: %v -> %v", before, after)
	}
}

func TestDoPartitioningDropsFilesOnReadFault(t *testing.T) {
	// A read fault strikes the input scan itself — the earliest error
	// path, where the partition files are still mostly empty.
	const n, span = 2000, 10000
	faulty, fs := disk.NewFaulty(page.DefaultSize, disk.FaultPlan{
		Faults: []disk.Fault{
			{Kind: disk.FaultPermanentRead, Page: -1, After: 2},
		},
	})
	r := buildUniform(t, faulty, n, span)
	before := faulty.LiveFiles()

	_, err := DoPartitioning(nil, r, mustCuts(t, 2500, 5000, 7500))
	if err == nil {
		t.Fatal("partitioning succeeded over a permanently failing device")
	}
	if fs.Stats().PermanentReads == 0 {
		t.Fatal("fault never fired")
	}
	if after := faulty.LiveFiles(); len(after) != len(before) {
		t.Fatalf("partition files leaked on the error path: %v -> %v", before, after)
	}
}

func TestDoPartitioningDropsFilesOnCancellation(t *testing.T) {
	d := disk.New(page.DefaultSize)
	r := buildUniform(t, d, 2000, 10000)
	before := d.LiveFiles()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := DoPartitioning(ctx, r, mustCuts(t, 2500, 5000, 7500))
	if err == nil {
		t.Fatal("partitioning completed under a cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	var abort *execctx.AbortError
	if !errors.As(err, &abort) {
		t.Fatalf("error %v (type %T) does not wrap *execctx.AbortError", err, err)
	}
	if after := d.LiveFiles(); len(after) != len(before) {
		t.Fatalf("partition files leaked on cancellation: %v -> %v", before, after)
	}
}

func TestDoPartitioningPairCleansUpWhenOnePassFails(t *testing.T) {
	// The paired pass runs both fills concurrently; when one pass dies
	// on a device fault, both passes' files must be removed and both
	// worker goroutines joined.
	testutil.VerifyNoLeaks(t)
	const n, span = 2000, 10000
	_, loadWrites := loadIO(t, n, span)
	faulty, fs := disk.NewFaulty(page.DefaultSize, disk.FaultPlan{
		Faults: []disk.Fault{
			// One strike, past both loads: exactly one of the two
			// concurrent fills hits it.
			{Kind: disk.FaultPermanentWrite, Page: -1, After: 2*loadWrites + 5},
		},
	})
	r := buildUniform(t, faulty, n, span)
	s := buildUniform(t, faulty, n, span)
	before := faulty.LiveFiles()

	rp, sp, err := DoPartitioningPair(nil, r, s, mustCuts(t, 2500, 5000, 7500))
	if err == nil {
		rp.Drop()
		sp.Drop()
		t.Fatal("paired partitioning succeeded over a permanently failing device")
	}
	var ioe *disk.IOError
	if !errors.As(err, &ioe) {
		t.Fatalf("error %v (type %T) does not wrap *disk.IOError", err, err)
	}
	if fs.Stats().PermanentWrites == 0 {
		t.Fatal("fault never fired")
	}
	if after := faulty.LiveFiles(); len(after) != len(before) {
		t.Fatalf("partition files leaked on the paired error path: %v -> %v", before, after)
	}
}

func TestDoPartitioningPairCleansUpOnCancellation(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	d := disk.New(page.DefaultSize)
	r := buildUniform(t, d, 2000, 10000)
	s := buildUniform(t, d, 2000, 10000)
	before := d.LiveFiles()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := DoPartitioningPair(ctx, r, s, mustCuts(t, 2500, 5000, 7500))
	if err == nil {
		t.Fatal("paired partitioning completed under a cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if after := d.LiveFiles(); len(after) != len(before) {
		t.Fatalf("partition files leaked on paired cancellation: %v -> %v", before, after)
	}
}
