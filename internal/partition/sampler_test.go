package partition

import (
	"math/rand"
	"testing"

	"vtjoin/internal/chronon"
	"vtjoin/internal/cost"
	"vtjoin/internal/disk"
	"vtjoin/internal/page"
	"vtjoin/internal/relation"
	"vtjoin/internal/sampling"
	"vtjoin/internal/tuple"
	"vtjoin/internal/value"
)

func drawViaSampling(r *relation.Relation, m int, w cost.Weights) (*sampling.Sample, error) {
	return sampling.Draw(r, m, w, rand.New(rand.NewSource(4)))
}

// buildDistinctTimes builds a relation whose tuples all carry distinct
// timestamps, so a duplicate interval start in a sample pinpoints a
// duplicated draw.
func buildDistinctTimes(t *testing.T, d *disk.Disk, n int) *relation.Relation {
	t.Helper()
	r := relation.Create(d, testSchema)
	b := r.NewBuilder()
	for i := 0; i < n; i++ {
		if err := b.Append(tuple.New(chronon.At(chronon.Chronon(i)), value.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestIncrementalSamplerNoDuplicatesAcrossTopUps is the regression
// test for the planner's duplicate-sample bug: ensure used to draw
// each top-up without replacement only within itself, so the
// cumulative sample repeated tuples and biased every later candidate's
// quantiles. The taken-set now spans the drawer's lifetime.
func TestIncrementalSamplerNoDuplicatesAcrossTopUps(t *testing.T) {
	d := disk.New(page.DefaultSize)
	r := buildDistinctTimes(t, d, 1000)
	// Make the scan strategy unreachable so every top-up goes through
	// the per-sample random drawer.
	w := cost.Weights{Rand: 1, Seq: 1e9}
	s, err := newIncrementalSampler(r, w, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	var sample []chronon.Interval
	for _, m := range []int{10, 50, 200} {
		sample, err = s.ensure(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(sample) != m {
			t.Fatalf("ensure(%d) returned %d samples", m, len(sample))
		}
	}
	seen := make(map[chronon.Chronon]bool)
	for _, iv := range sample {
		if seen[iv.Start] {
			t.Fatalf("timestamp %v sampled twice across top-ups", iv.Start)
		}
		seen[iv.Start] = true
	}
	if s.scanned {
		t.Fatal("sampler scanned despite prohibitive scan cost")
	}
	if s.topUps != 3 {
		t.Fatalf("topUps = %d, want 3", s.topUps)
	}
}

// TestSamplerPredicateBoundary pins the documented tie-break of the
// scan-vs-random decision on all three aligned paths: at exact cost
// equality (serving the outstanding demand by random reads costs
// exactly one scan) the random strategy is kept; one more sample tips
// it to the scan.
func TestSamplerPredicateBoundary(t *testing.T) {
	d := disk.New(page.DefaultSize)
	r := buildDistinctTimes(t, d, 1000)
	pages := mustPages(t, r)
	// With Rand == Seq, scanCost = pages * Rand: demanding exactly
	// `pages` samples is the tie.
	w := cost.Ratio(1)

	// ensure: tie stays random.
	s, err := newIncrementalSampler(r, w, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ensure(pages); err != nil {
		t.Fatal(err)
	}
	if s.scanned {
		t.Fatalf("ensure(%d) scanned on the tie", pages)
	}
	// ensure: one past the tie scans.
	s, err = newIncrementalSampler(r, w, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ensure(pages + 1); err != nil {
		t.Fatal(err)
	}
	if !s.scanned {
		t.Fatalf("ensure(%d) did not scan", pages+1)
	}

	// planAhead: same boundary on the look-ahead path.
	s, err = newIncrementalSampler(r, w, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.planAhead(pages); err != nil {
		t.Fatal(err)
	}
	if s.scanned {
		t.Fatalf("planAhead(%d) scanned on the tie", pages)
	}
	if err := s.planAhead(pages + 1); err != nil {
		t.Fatal(err)
	}
	if !s.scanned {
		t.Fatalf("planAhead(%d) did not scan", pages+1)
	}

	// sampling.Draw (via the one-shot path the ablation uses): ties keep
	// the random strategy there too — asserted through the counters,
	// since a scan would show sequential reads.
	d.ResetCounters()
	smp, err := drawViaSampling(r, pages, w)
	if err != nil {
		t.Fatal(err)
	}
	if smp.Sequential {
		t.Fatalf("sampling.Draw(%d) scanned on the tie", pages)
	}
	smp, err = drawViaSampling(r, pages+1, w)
	if err != nil {
		t.Fatal(err)
	}
	if !smp.Sequential {
		t.Fatalf("sampling.Draw(%d) did not scan", pages+1)
	}
}
