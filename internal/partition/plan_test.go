package partition

import (
	"math/rand"
	"testing"

	"vtjoin/internal/chronon"
	"vtjoin/internal/cost"
	"vtjoin/internal/disk"
	"vtjoin/internal/page"
	"vtjoin/internal/relation"
	"vtjoin/internal/tuple"
	"vtjoin/internal/value"
)

func mustPages(t testing.TB, r *relation.Relation) int {
	t.Helper()
	n, err := r.Pages()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func buildUniform(t *testing.T, d *disk.Disk, n int, lifespan int64) *relation.Relation {
	t.Helper()
	rng := rand.New(rand.NewSource(8))
	r := relation.Create(d, testSchema)
	b := r.NewBuilder()
	for i := 0; i < n; i++ {
		s := chronon.Chronon(rng.Int63n(lifespan))
		if err := b.Append(tuple.New(chronon.At(s), value.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDeterminePartIntervalsValidation(t *testing.T) {
	d := disk.New(page.DefaultSize)
	r := buildUniform(t, d, 100, 1000)
	if _, _, err := DeterminePartIntervals(r, PlanConfig{BuffSize: 0, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Fatal("buffSize=0 accepted")
	}
	if _, _, err := DeterminePartIntervals(r, PlanConfig{BuffSize: 4}); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestDeterminePartIntervalsEmptyRelation(t *testing.T) {
	d := disk.New(page.DefaultSize)
	r := relation.Create(d, testSchema)
	plan, cands, err := DeterminePartIntervals(r, PlanConfig{
		BuffSize: 8, Weights: cost.Ratio(5), Rng: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Partitioning.N() != 1 || len(cands) != 0 {
		t.Fatalf("empty relation plan: %+v", plan)
	}
}

func TestDeterminePartIntervalsProducesFittingPartitions(t *testing.T) {
	d := disk.New(page.DefaultSize)
	r := buildUniform(t, d, 8000, 100000)
	buffSize := mustPages(t, r)/8 + 2
	plan, _, err := DeterminePartIntervals(r, PlanConfig{
		BuffSize: buffSize,
		Weights:  cost.Ratio(5),
		Rng:      rand.New(rand.NewSource(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.PartSize < 1 || plan.PartSize > buffSize {
		t.Fatalf("partSize %d outside [1, %d]", plan.PartSize, buffSize)
	}
	// Physically partition and verify partitions fit in buffSize pages
	// (the Kolmogorov bound holds with 99% certainty; the fixed seed
	// makes this deterministic).
	pt, err := DoPartitioning(nil, r, plan.Partitioning)
	if err != nil {
		t.Fatal(err)
	}
	defer pt.Drop()
	for i := 0; i < pt.N(); i++ {
		if pt.Pages(i) > buffSize {
			t.Fatalf("partition %d occupies %d pages, buffer is %d", i, pt.Pages(i), buffSize)
		}
	}
}

func TestCandidateTraceMatchesFigure4(t *testing.T) {
	// Figure 4: sampling cost increases monotonically with partSize;
	// tuple-cache paging cost decreases monotonically.
	d := disk.New(page.DefaultSize)
	rng := rand.New(rand.NewSource(9))
	r := relation.Create(d, testSchema)
	b := r.NewBuilder()
	const lifespan = 100000
	for i := 0; i < 6000; i++ {
		s := chronon.Chronon(rng.Int63n(lifespan))
		var iv chronon.Interval
		if i%4 == 0 { // every 4th tuple is long-lived
			s = chronon.Chronon(rng.Int63n(lifespan / 2))
			iv = chronon.New(s, s+lifespan/2)
		} else {
			iv = chronon.At(s)
		}
		if err := b.Append(tuple.New(iv, value.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}

	plan, cands, err := DeterminePartIntervals(r, PlanConfig{
		BuffSize:      mustPages(t, r) / 4,
		Weights:       cost.Ratio(5),
		Rng:           rand.New(rand.NewSource(3)),
		CandidateStep: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 3 {
		t.Fatalf("only %d candidates", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Csample < cands[i-1].Csample-1e-9 {
			t.Fatalf("Csample not monotonically non-decreasing at candidate %d: %g -> %g",
				i, cands[i-1].Csample, cands[i].Csample)
		}
		if cands[i].CachePaging > cands[i-1].CachePaging+1e-9 {
			t.Fatalf("cache paging not monotonically non-increasing at candidate %d: %g -> %g",
				i, cands[i-1].CachePaging, cands[i].CachePaging)
		}
	}
	// The chosen plan minimizes the candidate sum.
	for _, c := range cands {
		if c.Csample+c.Cjoin < plan.EstimatedCost()-1e-9 {
			t.Fatalf("plan cost %g exceeds candidate partSize=%d cost %g",
				plan.EstimatedCost(), c.PartSize, c.Csample+c.Cjoin)
		}
	}
}

func TestSamplingCostCappedByScan(t *testing.T) {
	// Even with a tiny error margin (huge Kolmogorov m), actual sampling
	// I/O must not exceed one scan of the relation by much.
	d := disk.New(page.DefaultSize)
	r := buildUniform(t, d, 8000, 100000)
	w := cost.Ratio(10)
	scanCost := w.Rand + float64(mustPages(t, r)-1)*w.Seq

	d.ResetCounters()
	_, _, err := DeterminePartIntervals(r, PlanConfig{
		BuffSize: mustPages(t, r) / 4,
		Weights:  w,
		Rng:      rand.New(rand.NewSource(5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	actual := w.Of(d.Counters())
	if actual > 2*scanCost {
		t.Fatalf("planning cost %g exceeds twice the scan cost %g", actual, scanCost)
	}
}

func TestDeterminePartIntervalsStepCoversBuffSize(t *testing.T) {
	d := disk.New(page.DefaultSize)
	r := buildUniform(t, d, 2000, 10000)
	_, cands, err := DeterminePartIntervals(r, PlanConfig{
		BuffSize:      10,
		Weights:       cost.Ratio(2),
		Rng:           rand.New(rand.NewSource(6)),
		CandidateStep: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if cands[0].PartSize != 1 {
		t.Fatalf("first candidate partSize = %d", cands[0].PartSize)
	}
}
