// Package partition implements Section 3 of the paper: partitionings of
// the valid-time line, the sampling-driven partition-interval chooser
// (determinePartIntervals, chooseIntervals, estimateCacheSizes from
// Appendices A.2–A.4), and the Grace partitioner that physically
// distributes tuples, storing each tuple in the *last* partition it
// overlaps so long-lived tuples are never replicated on disk.
package partition

import (
	"fmt"
	"sort"

	"vtjoin/internal/chronon"
)

// Partitioning is a set P of n non-overlapping intervals p1 < ... < pn
// that completely covers the valid-time line (Section 3.3). It is
// represented by its n-1 interior cut chronons: partition i (0-based)
// is [cuts[i-1]+1, cuts[i]], with p0 starting at chronon.Beginning and
// p(n-1) ending at chronon.Forever.
type Partitioning struct {
	cuts []chronon.Chronon
}

// Single returns the trivial partitioning with one interval covering
// the entire time-line.
func Single() Partitioning { return Partitioning{} }

// FromCuts builds a partitioning from strictly increasing interior cut
// chronons. len(cuts)+1 partitions result. Cuts must lie strictly
// inside (Beginning, Forever).
func FromCuts(cuts []chronon.Chronon) (Partitioning, error) {
	for i, c := range cuts {
		if c <= chronon.Beginning || c >= chronon.Forever {
			return Partitioning{}, fmt.Errorf("partition: cut %d (%d) outside the representable time-line", i, c)
		}
		if i > 0 && cuts[i-1] >= c {
			return Partitioning{}, fmt.Errorf("partition: cuts not strictly increasing at %d (%d >= %d)", i, cuts[i-1], c)
		}
	}
	cp := make([]chronon.Chronon, len(cuts))
	copy(cp, cuts)
	return Partitioning{cuts: cp}, nil
}

// N returns the number of partitions (always >= 1).
func (p Partitioning) N() int { return len(p.cuts) + 1 }

// Interval returns partition i's partitioning interval p(i+1) in the
// paper's 1-based numbering; i is 0-based here.
func (p Partitioning) Interval(i int) chronon.Interval {
	n := p.N()
	if i < 0 || i >= n {
		panic(fmt.Sprintf("partition: index %d out of range [0, %d)", i, n))
	}
	start := chronon.Beginning
	if i > 0 {
		start = p.cuts[i-1] + 1
	}
	end := chronon.Forever
	if i < n-1 {
		end = p.cuts[i]
	}
	return chronon.New(start, end)
}

// Locate returns the index of the partition containing chronon t.
func (p Partitioning) Locate(t chronon.Chronon) int {
	// The first cut >= t bounds t's partition.
	return sort.Search(len(p.cuts), func(i int) bool { return p.cuts[i] >= t })
}

// Range returns the indexes of the first and last partitions that a
// tuple with timestamp iv overlaps. A tuple "is in partition ri iff
// overlap(x[V], pi) != ⊥" (Section 3.3); it is physically stored in
// the last. Range panics on a null interval: null timestamps cannot
// appear in a relation instance.
func (p Partitioning) Range(iv chronon.Interval) (first, last int) {
	if iv.IsNull() {
		panic("partition: Range of null interval")
	}
	return p.Locate(iv.Start), p.Locate(iv.End)
}

// Last returns the index of the last partition overlapping iv — the
// partition the tuple is physically stored in.
func (p Partitioning) Last(iv chronon.Interval) int {
	_, last := p.Range(iv)
	return last
}

// Validate re-checks the structural invariants behind coverage and
// disjointness: the interior cuts must be strictly increasing and lie
// strictly inside (Beginning, Forever). Given that, the partitioning's
// intervals are contiguous and cover the whole time-line by
// construction. FromCuts enforces this at build time; Validate exists
// for the trace audits, which re-verify rather than trust.
func (p Partitioning) Validate() error {
	prev := chronon.Beginning
	for i, c := range p.cuts {
		if c <= chronon.Beginning || c >= chronon.Forever {
			return fmt.Errorf("partition: cut %d (%d) outside the representable time-line", i, c)
		}
		if i > 0 && c <= prev {
			return fmt.Errorf("partition: cuts not strictly increasing at %d (%d <= %d)", i, c, prev)
		}
		prev = c
	}
	return nil
}

// Cuts returns a copy of the interior cut chronons.
func (p Partitioning) Cuts() []chronon.Chronon {
	out := make([]chronon.Chronon, len(p.cuts))
	copy(out, p.cuts)
	return out
}

// String renders the partitioning compactly.
func (p Partitioning) String() string {
	if p.N() == 1 {
		return "partitioning{1: (-inf, +inf)}"
	}
	return fmt.Sprintf("partitioning{%d parts, cuts=%v}", p.N(), p.cuts)
}
