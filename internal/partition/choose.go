package partition

import (
	"fmt"
	"math"

	"vtjoin/internal/chronon"
	"vtjoin/internal/sampling"
)

// ChooseIntervals is the paper's chooseIntervals (Appendix A.3): derive
// a partitioning of the valid-time line from the timestamps of sampled
// tuples so that each partition covers approximately the same number of
// tuples. Cut chronons are equi-depth quantiles of the multiset of
// chronons covered by the sample (computed exactly by a sweep — see
// sampling.CoverageQuantiles). Fewer than numPartitions partitions may
// result when the sample cannot support that many distinct boundaries.
func ChooseIntervals(sampleIntervals []chronon.Interval, numPartitions int) (Partitioning, error) {
	if numPartitions < 1 {
		return Partitioning{}, fmt.Errorf("partition: numPartitions must be >= 1, got %d", numPartitions)
	}
	cuts, err := sampling.CoverageQuantiles(sampleIntervals, numPartitions)
	if err != nil {
		return Partitioning{}, err
	}
	// Quantiles at the extreme ends of the representable line cannot be
	// interior cuts.
	filtered := cuts[:0]
	for _, c := range cuts {
		if c > chronon.Beginning && c < chronon.Forever {
			filtered = append(filtered, c)
		}
	}
	return FromCuts(filtered)
}

// EstimateCacheSizes is the paper's estimateCacheSizes (Appendix A.4):
// estimate, for each partition, the number of tuple-cache pages its
// evaluation will need. A sampled tuple that overlaps partitions
// j..last occupies the cache of partitions j..last-1 (it is stored in
// partition `last` and migrates backwards through the cache). Counts
// are scaled from the sample to the full relation by 1/sampleFraction
// and converted to pages with tuplesPerPage.
//
// The returned slice has one entry per partition: the estimated cache
// size in pages (fractional; callers round up when budgeting).
func EstimateCacheSizes(sampleIntervals []chronon.Interval, sampleFraction float64,
	part Partitioning, tuplesPerPage float64) ([]float64, error) {
	if tuplesPerPage <= 0 {
		return nil, fmt.Errorf("partition: tuplesPerPage must be positive, got %g", tuplesPerPage)
	}
	counts := make([]int64, part.N())
	for _, iv := range sampleIntervals {
		first, last := part.Range(iv)
		for i := first; i < last; i++ {
			counts[i]++
		}
	}
	out := make([]float64, part.N())
	if sampleFraction <= 0 {
		// No sample: no basis for estimation; report zero cache.
		return out, nil
	}
	for i, c := range counts {
		estTuples := float64(c) / sampleFraction
		out[i] = estTuples / tuplesPerPage
	}
	return out, nil
}

// CachePagesTotal sums the (rounded-up) per-partition cache sizes,
// counting only partitions that need a cache at all.
func CachePagesTotal(cachePages []float64) int {
	total := 0
	for _, c := range cachePages {
		if c > 0 {
			total += int(math.Ceil(c))
		}
	}
	return total
}
