package partition

import (
	"math/rand"
	"testing"

	"vtjoin/internal/chronon"
	"vtjoin/internal/disk"
	"vtjoin/internal/page"
)

func TestReplicatedPlacement(t *testing.T) {
	d := disk.New(page.DefaultSize)
	p := mustCuts(t, 9, 19) // partitions ...-9, 10-19, 20-...
	ivs := []chronon.Interval{
		chronon.New(0, 5),  // partition 0 only
		chronon.New(5, 15), // partitions 0 and 1: two copies
		chronon.New(0, 25), // all three: three copies
	}
	r := buildRel(t, d, ivs)
	pt, err := DoPartitioningReplicated(r, p)
	if err != nil {
		t.Fatal(err)
	}
	defer pt.Drop()
	if pt.TotalTuples() != 1+2+3 {
		t.Fatalf("replicated copies = %d, want 6", pt.TotalTuples())
	}
	// Every partition holds each overlapping tuple.
	wantPerPartition := []int64{3, 2, 1}
	for i, want := range wantPerPartition {
		if got := pt.Tuples(i); got != want {
			t.Fatalf("partition %d holds %d, want %d", i, got, want)
		}
	}
}

func TestReplicationStorageBlowup(t *testing.T) {
	// The ablation behind Section 3.2's argument: as long-lived density
	// grows, replicated storage grows with it while last-overlap
	// placement stays at the input size.
	pagesAt := func(longEvery int) (lastOverlap, replicated int) {
		t.Helper()
		d := disk.New(page.DefaultSize)
		rng := rand.New(rand.NewSource(42))
		var ivs []chronon.Interval
		for i := 0; i < 4000; i++ {
			if longEvery > 0 && i%longEvery == 0 {
				s := chronon.Chronon(rng.Intn(5000))
				ivs = append(ivs, chronon.New(s, s+5000))
			} else {
				ivs = append(ivs, chronon.At(chronon.Chronon(rng.Intn(10000))))
			}
		}
		r := buildRel(t, d, ivs)
		parting := mustCuts(t, 1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000)
		a, err := DoPartitioning(nil, r, parting)
		if err != nil {
			t.Fatal(err)
		}
		b, err := DoPartitioningReplicated(r, parting)
		if err != nil {
			t.Fatal(err)
		}
		if a.TotalTuples() != r.Tuples() {
			t.Fatalf("last-overlap placement replicated: %d vs %d", a.TotalTuples(), r.Tuples())
		}
		return a.TotalPages(), b.TotalPages()
	}

	loNone, repNone := pagesAt(0)
	if repNone > loNone+10 {
		t.Fatalf("without long-lived tuples the strategies should tie: %d vs %d", loNone, repNone)
	}
	loDense, repDense := pagesAt(3) // 33% long-lived crossing ~half the partitions
	if repDense < loDense*2 {
		t.Fatalf("replication should blow up storage with long-lived tuples: %d vs %d", loDense, repDense)
	}
}
