package partition

import (
	"fmt"

	"vtjoin/internal/chronon"
	"vtjoin/internal/disk"
	"vtjoin/internal/page"
	"vtjoin/internal/relation"
)

// DoPartitioningReplicated partitions r by replicating every tuple
// into each partition it overlaps — the strategy of Leung & Muntz
// [LM92b] that the paper argues against: "replication requires
// additional secondary storage space and complicates update
// operations" (Section 3.2). It exists as the ablation baseline for
// that argument: with long-lived tuples the replicated partitioning's
// page count grows with density while the last-overlap partitioning's
// stays equal to the input (see BenchmarkAblationReplication and
// TestReplicationStorageBlowup).
//
// A partition-local join over a replicated partitioning would also
// produce duplicate results for pairs sharing several partitions; the
// returned Partitioned is therefore suitable for storage/update-cost
// studies, not as a drop-in input to joinPartitions.
func DoPartitioningReplicated(r *relation.Relation, part Partitioning) (*Partitioned, error) {
	d := r.Disk()
	n := part.N()
	p := &Partitioned{
		Part:     part,
		Schema:   r.Schema(),
		d:        d,
		format:   r.Format(),
		files:    make([]disk.FileID, n),
		pages:    make([]int, n),
		tuples:   make([]int64, n),
		minStart: make([]chronon.Chronon, n),
	}
	for i := range p.minStart {
		p.minStart[i] = chronon.Forever
	}
	buckets := make([]*page.Page, n)
	for i := range p.files {
		p.files[i] = d.Create()
		buckets[i] = page.MustNewFormat(d.PageSize(), p.format)
	}
	in := page.MustNew(d.PageSize())
	ps := r.ScanPages()
	for {
		ok, err := ps.Next(in)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		for s := 0; s < in.Count(); s++ {
			iv, err := in.RecordInterval(s)
			if err != nil {
				return nil, fmt.Errorf("partition: page record %d: %w", s, err)
			}
			first, last := part.Range(iv)
			for i := first; i <= last; i++ {
				ok, err := in.CopyRecordTo(s, buckets[i])
				if err != nil {
					return nil, err
				}
				if !ok {
					if err := p.flushBucket(i, buckets[i]); err != nil {
						return nil, err
					}
					if ok, err = in.CopyRecordTo(s, buckets[i]); err != nil {
						return nil, err
					} else if !ok {
						return nil, fmt.Errorf("partition: record %d does not fit an empty page", s)
					}
				}
				p.tuples[i]++
				if iv.Start < p.minStart[i] {
					p.minStart[i] = iv.Start
				}
			}
		}
	}
	for i, b := range buckets {
		if b.Count() > 0 {
			if err := p.flushBucket(i, b); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}
