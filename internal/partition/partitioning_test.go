package partition

import (
	"math/rand"
	"testing"

	"vtjoin/internal/chronon"
)

func mustCuts(t *testing.T, cuts ...chronon.Chronon) Partitioning {
	t.Helper()
	p, err := FromCuts(cuts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSingle(t *testing.T) {
	p := Single()
	if p.N() != 1 {
		t.Fatalf("N = %d", p.N())
	}
	iv := p.Interval(0)
	if iv.Start != chronon.Beginning || iv.End != chronon.Forever {
		t.Fatalf("interval = %v", iv)
	}
	if p.Locate(0) != 0 || p.Last(chronon.New(-100, 100)) != 0 {
		t.Fatal("single partitioning should map everything to 0")
	}
}

func TestFromCutsValidation(t *testing.T) {
	if _, err := FromCuts([]chronon.Chronon{10, 10}); err == nil {
		t.Fatal("non-increasing cuts accepted")
	}
	if _, err := FromCuts([]chronon.Chronon{10, 5}); err == nil {
		t.Fatal("decreasing cuts accepted")
	}
	if _, err := FromCuts([]chronon.Chronon{chronon.Beginning}); err == nil {
		t.Fatal("cut at Beginning accepted")
	}
	if _, err := FromCuts([]chronon.Chronon{chronon.Forever}); err == nil {
		t.Fatal("cut at Forever accepted")
	}
}

func TestIntervalsPartitionTheLine(t *testing.T) {
	p := mustCuts(t, 10, 20, 30)
	if p.N() != 4 {
		t.Fatalf("N = %d", p.N())
	}
	// Consecutive partitions must meet exactly (cover, no overlap).
	for i := 0; i < p.N()-1; i++ {
		a, b := p.Interval(i), p.Interval(i+1)
		if !a.Meets(b) {
			t.Fatalf("partitions %d and %d do not meet: %v, %v", i, i+1, a, b)
		}
	}
	if p.Interval(0).Start != chronon.Beginning {
		t.Fatal("first partition must start at Beginning")
	}
	if p.Interval(3).End != chronon.Forever {
		t.Fatal("last partition must end at Forever")
	}
	// Boundary chronons land in the lower partition (cuts are
	// inclusive upper bounds).
	if p.Locate(10) != 0 || p.Locate(11) != 1 || p.Locate(20) != 1 || p.Locate(21) != 2 {
		t.Fatal("Locate misplaces boundary chronons")
	}
}

func TestIntervalPanicsOutOfRange(t *testing.T) {
	p := mustCuts(t, 10)
	for _, i := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Interval(%d) did not panic", i)
				}
			}()
			p.Interval(i)
		}()
	}
}

func TestRangeAndLast(t *testing.T) {
	p := mustCuts(t, 10, 20, 30)
	cases := []struct {
		iv          chronon.Interval
		first, last int
	}{
		{chronon.New(0, 5), 0, 0},
		{chronon.New(5, 15), 0, 1},
		{chronon.New(0, 100), 0, 3},
		{chronon.New(11, 20), 1, 1},
		{chronon.New(10, 11), 0, 1}, // spans the cut
		{chronon.New(35, 40), 3, 3},
		{chronon.New(21, 31), 2, 3},
	}
	for _, c := range cases {
		f, l := c.iv, 0
		first, last := p.Range(c.iv)
		_ = f
		_ = l
		if first != c.first || last != c.last {
			t.Errorf("Range(%v) = (%d, %d), want (%d, %d)", c.iv, first, last, c.first, c.last)
		}
		if p.Last(c.iv) != c.last {
			t.Errorf("Last(%v) = %d, want %d", c.iv, p.Last(c.iv), c.last)
		}
	}
}

func TestRangePanicsOnNull(t *testing.T) {
	p := mustCuts(t, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("Range(null) did not panic")
		}
	}()
	p.Range(chronon.Null())
}

func TestRangeConsistentWithOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := mustCuts(t, 5, 17, 42, 99, 250)
	for trial := 0; trial < 3000; trial++ {
		s := chronon.Chronon(rng.Intn(300)) - 20
		iv := chronon.New(s, s+chronon.Chronon(rng.Intn(120)))
		first, last := p.Range(iv)
		for i := 0; i < p.N(); i++ {
			overlaps := p.Interval(i).Overlaps(iv)
			inRange := i >= first && i <= last
			if overlaps != inRange {
				t.Fatalf("partition %d: overlap=%v but Range(%v)=(%d,%d)", i, overlaps, iv, first, last)
			}
		}
	}
}

func TestCutsReturnsCopy(t *testing.T) {
	p := mustCuts(t, 10, 20)
	cuts := p.Cuts()
	cuts[0] = 999
	if p.Cuts()[0] != 10 {
		t.Fatal("Cuts() must return a copy")
	}
}

func TestString(t *testing.T) {
	if Single().String() == "" || mustCuts(t, 5).String() == "" {
		t.Fatal("empty String")
	}
}
