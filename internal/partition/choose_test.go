package partition

import (
	"testing"

	"vtjoin/internal/chronon"
)

func TestChooseIntervalsUniform(t *testing.T) {
	// 1000 unit tuples uniformly over [0, 999]: 4 partitions should cut
	// near the quartiles.
	var in []chronon.Interval
	for i := 0; i < 1000; i++ {
		in = append(in, chronon.At(chronon.Chronon(i)))
	}
	p, err := ChooseIntervals(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 4 {
		t.Fatalf("N = %d, want 4", p.N())
	}
	cuts := p.Cuts()
	wantNear := []chronon.Chronon{249, 499, 749}
	for i, c := range cuts {
		if c < wantNear[i]-1 || c > wantNear[i]+1 {
			t.Fatalf("cut %d = %d, want near %d", i, c, wantNear[i])
		}
	}
}

func TestChooseIntervalsBalancesSkew(t *testing.T) {
	// 900 tuples clustered at [0, 99], 100 spread over [100, 999].
	var in []chronon.Interval
	for i := 0; i < 900; i++ {
		in = append(in, chronon.At(chronon.Chronon(i%100)))
	}
	for i := 0; i < 100; i++ {
		in = append(in, chronon.At(chronon.Chronon(100+i*9)))
	}
	p, err := ChooseIntervals(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Count tuples per partition: the spread should be far tighter than
	// the 9:1 density skew of the time-line itself.
	counts := make([]int, p.N())
	for _, iv := range in {
		counts[p.Last(iv)]++
	}
	for i, c := range counts {
		if c < 150 || c > 400 {
			t.Fatalf("partition %d holds %d of 1000 tuples; partitioning did not balance skew (%v)", i, c, counts)
		}
	}
}

func TestChooseIntervalsDegenerate(t *testing.T) {
	// All tuples at one chronon: only one boundary is supportable.
	in := []chronon.Interval{chronon.At(7), chronon.At(7), chronon.At(7)}
	p, err := ChooseIntervals(in, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() > 2 {
		t.Fatalf("N = %d, want <= 2 for single-chronon coverage", p.N())
	}
	// Empty sample: trivial partitioning.
	p, err = ChooseIntervals(nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 1 {
		t.Fatalf("empty sample: N = %d", p.N())
	}
	if _, err := ChooseIntervals(in, 0); err == nil {
		t.Fatal("numPartitions=0 accepted")
	}
}

func TestEstimateCacheSizes(t *testing.T) {
	p := mustCuts(t, 9, 19, 29) // partitions ...-9, 10-19, 20-29, 30-...
	// Sample: two short tuples (no cache) and two long-lived ones.
	sample := []chronon.Interval{
		chronon.New(0, 5),   // partition 0 only
		chronon.New(12, 15), // partition 1 only
		chronon.New(5, 25),  // overlaps partitions 0,1,2; cached in 0 and 1
		chronon.New(15, 35), // overlaps 1,2,3; cached in 1 and 2
	}
	// Sample fraction 0.5 (sample of 4 from a relation of 8),
	// 2 tuples per page.
	cache, err := EstimateCacheSizes(sample, 0.5, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cache) != 4 {
		t.Fatalf("%d entries", len(cache))
	}
	// Partition 0: 1 sampled long-lived tuple -> 2 estimated tuples -> 1 page.
	// Partition 1: 2 sampled -> 4 estimated -> 2 pages.
	// Partition 2: 1 sampled -> 2 estimated -> 1 page.
	// Partition 3: stored tuples only -> 0.
	want := []float64{1, 2, 1, 0}
	for i := range want {
		if cache[i] != want[i] {
			t.Fatalf("cache[%d] = %g, want %g (all: %v)", i, cache[i], want[i], cache)
		}
	}
	if got := CachePagesTotal(cache); got != 4 {
		t.Fatalf("CachePagesTotal = %d, want 4", got)
	}
}

func TestEstimateCacheSizesValidation(t *testing.T) {
	p := Single()
	if _, err := EstimateCacheSizes(nil, 0.5, p, 0); err == nil {
		t.Fatal("zero tuplesPerPage accepted")
	}
	// Zero sample fraction: all-zero estimates, no error.
	cache, err := EstimateCacheSizes(nil, 0, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(cache) != 1 || cache[0] != 0 {
		t.Fatalf("cache = %v", cache)
	}
}

func TestCachePagesTotalRoundsUp(t *testing.T) {
	if got := CachePagesTotal([]float64{0.2, 1.5, 0}); got != 3 {
		t.Fatalf("got %d, want 3", got)
	}
}
