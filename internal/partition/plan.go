package partition

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"vtjoin/internal/chronon"
	"vtjoin/internal/cost"
	"vtjoin/internal/execctx"
	"vtjoin/internal/relation"
	"vtjoin/internal/sampling"
	"vtjoin/internal/trace"
)

// PlanConfig configures determinePartIntervals.
type PlanConfig struct {
	// Ctx cancels the planning phase cooperatively: it is checked per
	// candidate partition size and per page of the sampler's scan. Nil
	// means never cancelled.
	Ctx context.Context
	// BuffSize is the number of buffer pages available to hold an outer
	// relation partition (Figure 3's "buffSize" area; the inner page,
	// tuple-cache page and result page are budgeted separately).
	BuffSize int
	// Weights is the random:sequential access cost model used to score
	// candidate partition sizes.
	Weights cost.Weights
	// Rng drives sampling. Required.
	Rng *rand.Rand
	// CandidateStep is the granularity of the partSize search. The
	// paper's Appendix A.2 evaluates every partSize from 1 to buffSize;
	// the cost curve is the sum of a monotonically increasing sampling
	// cost and a monotonically decreasing cache-paging cost (Figure 4),
	// so a coarser grid finds a near-minimal candidate at a fraction of
	// the planning CPU time. Zero selects an automatic step of about
	// buffSize/64.
	CandidateStep int
	// TuplesPerPage converts tuple-count estimates to pages. If zero it
	// is derived from the relation (tuples / pages).
	TuplesPerPage float64
	// DisableScanOptimization forces per-sample random reads even when
	// a sequential scan would be cheaper — the naive strategy the paper
	// started from before discovering the Section 4.2 optimization.
	// Exists for the ablation benchmarks; leave false in production.
	DisableScanOptimization bool
	// Tracer, when non-nil, records the candidate cost curve, sampler
	// strategy switches and chosen plan on the current trace span.
	Tracer *trace.Tracer
	// Shards, when > 1, floors every candidate's requested partition
	// count at this value so the chosen partitioning can be coarsened
	// into that many time-shards (each shard boundary must coincide
	// with a partition boundary). Zero or one imposes no floor.
	Shards int
}

// Plan is the output of determinePartIntervals: the chosen partitioning
// plus the cost estimates that selected it (exposed so experiments can
// reproduce Figure 4's trade-off curves).
type Plan struct {
	Partitioning  Partitioning
	PartSize      int     // expected outer-partition size, pages
	ErrorSize     int     // buffSize - partSize, pages
	NumPartitions int     // partitions requested (>= actual N)
	SamplesDrawn  int     // cumulative samples backing the choice
	Csample       float64 // estimated sampling cost (weighted I/O)
	Cjoin         float64 // estimated partition-join cost (weighted I/O)
	CachePages    []float64
}

// EstimatedCost returns Csample + Cjoin, the objective the plan
// minimizes.
func (p *Plan) EstimatedCost() float64 { return p.Csample + p.Cjoin }

// Candidate records one evaluated partSize, for Figure 4.
type Candidate struct {
	PartSize int
	Csample  float64
	Cjoin    float64
	// CachePaging is the tuple-cache component of Cjoin in isolation —
	// the dashed curve of Figure 4.
	CachePaging float64
}

// incrementalSampler tops up a sample of r's tuple timestamps on
// demand, mirroring Appendix A.2's incremental draw: "Since the number
// of samples increases with partition size, we incrementally draw
// samples from r and add them to the sample set for increasing
// partSize." Once the cumulative random-read cost would exceed one
// sequential scan, it switches to the Section 4.2 optimization: scan
// the relation once and serve any number of samples from it.
type incrementalSampler struct {
	r     *relation.Relation
	w     cost.Weights
	rng   *rand.Rand
	drawn []chronon.Interval
	// drawer performs the per-sample random reads. It is created once
	// and kept across top-ups so its taken-set makes the *cumulative*
	// sample without-replacement; drawing each top-up independently
	// would re-admit earlier tuples and bias later candidates'
	// quantiles toward a with-replacement distribution.
	drawer   *sampling.Drawer
	scanned  bool
	scanCost float64
	spent    float64 // weighted I/O spent on sampling so far
	topUps   int     // random-strategy Draw calls served
	noScan   bool    // ablation: never switch to the scan strategy
	ctx      context.Context
	tr       *trace.Tracer
}

func newIncrementalSampler(r *relation.Relation, w cost.Weights, rng *rand.Rand) (*incrementalSampler, error) {
	pages, err := r.Pages()
	if err != nil {
		return nil, err
	}
	sc := 0.0
	if pages > 0 {
		sc = w.Rand + float64(pages-1)*w.Seq
	}
	return &incrementalSampler{r: r, w: w, rng: rng, scanCost: sc}, nil
}

// planAhead tells the sampler the largest sample size any candidate
// will request. If serving that outstanding demand by random reads
// would cost strictly more than a scan anyway, the sampler scans
// immediately — the global form of the Section 4.2 optimization,
// avoiding random draws that a later, larger request would render
// redundant. The predicate (remaining demand × Rand > scanCost,
// strictly, ties keeping the random strategy) is identical to
// sampling.Draw's and ensure's, so the boundary case is classified the
// same on every path.
func (s *incrementalSampler) planAhead(maxM int) error {
	if s.scanned || s.noScan {
		return nil
	}
	if total := int(s.r.Tuples()); maxM > total {
		maxM = total
	}
	remaining := maxM - len(s.drawn)
	if float64(remaining)*s.w.Rand > s.scanCost {
		_, err := s.ensure(int(s.r.Tuples()))
		return err
	}
	return nil
}

// ensure grows the sample to at least m timestamps and returns the
// current set. The returned slice must not be modified.
func (s *incrementalSampler) ensure(m int) ([]chronon.Interval, error) {
	if total := int(s.r.Tuples()); m > total {
		m = total
	}
	if m <= len(s.drawn) {
		return s.drawn[:len(s.drawn)], nil
	}
	need := m - len(s.drawn)
	// Same strategy predicate as sampling.Draw, over the *outstanding*
	// demand: switch to one scan exactly when serving `need` by random
	// reads costs strictly more; ties keep random. Cost already spent
	// on earlier top-ups is sunk and deliberately excluded — counting
	// it would flip the incremental path to scanning earlier than the
	// one-shot path for the same cumulative demand.
	if !s.scanned && !s.noScan && float64(need)*s.w.Rand > s.scanCost {
		// Cheaper to scan everything once: do so, keep every timestamp
		// in random order, and serve all future requests for free.
		prior := len(s.drawn)
		s.tr.Begin("sampler scan")
		sc := s.r.Scan()
		all := make([]chronon.Interval, 0, s.r.Tuples())
		for {
			if err := execctx.Check(s.ctx, "partition: sampler scan"); err != nil {
				s.tr.End()
				return nil, err
			}
			t, ok, err := sc.Next()
			if err != nil {
				s.tr.End()
				return nil, err
			}
			if !ok {
				break
			}
			all = append(all, t.V)
		}
		s.rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		s.drawn = all
		s.scanned = true
		s.spent += s.scanCost
		s.tr.SetAttr("tuples", len(all))
		s.tr.SetAttr("randomDrawsBeforeSwitch", prior)
		s.tr.End()
		return s.drawn[:m], nil
	}
	if s.scanned {
		return s.drawn[:m], nil
	}
	if s.drawer == nil {
		dr, err := sampling.NewDrawer(s.r, s.rng)
		if err != nil {
			return nil, err
		}
		s.drawer = dr
	}
	sub, err := s.drawer.Draw(need)
	if err != nil {
		return nil, err
	}
	for _, t := range sub {
		s.drawn = append(s.drawn, t.V)
	}
	s.spent += float64(len(sub)) * s.w.Rand
	s.topUps++
	return s.drawn, nil
}

// DeterminePartIntervals is the paper's determinePartIntervals
// (Appendix A.2): for candidate partition sizes partSize in
// [1, buffSize], estimate Csample (from the Kolmogorov statistic) and
// Cjoin (partition reads plus tuple-cache paging, both relations), and
// return the partitioning whose candidate minimizes Csample + Cjoin.
//
// It also returns the full candidate trace so callers can plot the
// Figure 4 trade-off.
func DeterminePartIntervals(r *relation.Relation, cfg PlanConfig) (*Plan, []Candidate, error) {
	if cfg.BuffSize < 1 {
		return nil, nil, fmt.Errorf("partition: buffSize must be >= 1, got %d", cfg.BuffSize)
	}
	if cfg.Rng == nil {
		return nil, nil, fmt.Errorf("partition: PlanConfig.Rng is required")
	}
	relPages, err := r.Pages()
	if err != nil {
		return nil, nil, err
	}
	if relPages == 0 {
		return &Plan{Partitioning: Single(), PartSize: cfg.BuffSize, NumPartitions: 1}, nil, nil
	}
	tpp := cfg.TuplesPerPage
	if tpp <= 0 {
		tpp = float64(r.Tuples()) / float64(relPages)
	}
	step := cfg.CandidateStep
	if step <= 0 {
		step = cfg.BuffSize / 64
		if step < 1 {
			step = 1
		}
	}

	sampler, err := newIncrementalSampler(r, cfg.Weights, cfg.Rng)
	if err != nil {
		return nil, nil, err
	}
	sampler.noScan = cfg.DisableScanOptimization
	sampler.ctx = cfg.Ctx
	sampler.tr = cfg.Tracer
	scanCost := sampler.scanCost

	// The largest candidate partSize leaves the smallest error margin
	// and so demands the largest sample; if that demand already exceeds
	// one sequential scan, scan upfront instead of paying for random
	// draws that will be subsumed anyway.
	lastPartSize := 1
	for ps := 1; ps <= cfg.BuffSize; ps += step {
		lastPartSize = ps
	}
	maxWant := int(r.Tuples())
	if errSz := cfg.BuffSize - lastPartSize; errSz > 0 {
		var err error
		maxWant, err = sampling.SampleSize(relPages, errSz)
		if err != nil {
			return nil, nil, err
		}
	}
	if err := sampler.planAhead(maxWant); err != nil {
		return nil, nil, err
	}

	var (
		best       *Plan
		candidates []Candidate
	)
	for partSize := 1; partSize <= cfg.BuffSize; partSize += step {
		if err := execctx.Check(cfg.Ctx, "partition: plan"); err != nil {
			return nil, nil, err
		}
		errorSize := cfg.BuffSize - partSize
		var wantSamples int
		if errorSize <= 0 {
			// partSize == buffSize leaves no error margin; only an
			// exact (full-scan) sample avoids overflow.
			errorSize = 0
			wantSamples = int(r.Tuples())
		} else {
			var err error
			wantSamples, err = sampling.SampleSize(relPages, errorSize)
			if err != nil {
				return nil, nil, err
			}
		}

		// Csample under the Section 4.2 optimization: never more than
		// one sequential scan of the relation.
		csample := float64(wantSamples) * cfg.Weights.Rand
		if csample > scanCost && !cfg.DisableScanOptimization {
			csample = scanCost
		}

		numPartitions := (relPages + partSize - 1) / partSize
		if numPartitions < cfg.Shards {
			numPartitions = cfg.Shards
		}
		sampleSet, err := sampler.ensure(wantSamples)
		if err != nil {
			return nil, nil, err
		}
		part, err := ChooseIntervals(sampleSet, numPartitions)
		if err != nil {
			return nil, nil, err
		}
		fraction := 0.0
		if r.Tuples() > 0 {
			fraction = float64(len(sampleSet)) / float64(r.Tuples())
		}
		cachePages, err := EstimateCacheSizes(sampleSet, fraction, part, tpp)
		if err != nil {
			return nil, nil, err
		}

		// Cjoin (Appendix A.2): both relations' partitions are read —
		// one random seek per partition, the remaining pages
		// sequentially — and each partition's tuple cache is written
		// and read once (one random seek plus sequential accesses).
		// The paper's formula uses numPartitions × (partSize-1)
		// sequential reads; with sparse samples the realized
		// partitioning can have fewer (hence larger) partitions, so the
		// realized partition count and the true page volume give the
		// accurate estimate.
		n := float64(part.N())
		seqPages := float64(relPages) - n
		if seqPages < 0 {
			seqPages = 0
		}
		cjoin := 2 * (n*cfg.Weights.Rand + seqPages*cfg.Weights.Seq)
		cachePaging := 0.0
		for _, m := range cachePages {
			if m <= 0 {
				continue
			}
			mp := math.Ceil(m)
			cachePaging += 2 * (cfg.Weights.Rand + cfg.Weights.Seq*(mp-1))
		}
		cjoin += cachePaging

		candidates = append(candidates, Candidate{
			PartSize:    partSize,
			Csample:     csample,
			Cjoin:       cjoin,
			CachePaging: cachePaging,
		})

		total := csample + cjoin
		if best == nil || total <= best.EstimatedCost() {
			best = &Plan{
				Partitioning:  part,
				PartSize:      partSize,
				ErrorSize:     errorSize,
				NumPartitions: numPartitions,
				SamplesDrawn:  len(sampleSet),
				Csample:       csample,
				Cjoin:         cjoin,
				CachePages:    cachePages,
			}
		}
	}
	recordPlanTrace(cfg.Tracer, best, candidates, sampler, step)
	return best, candidates, nil
}

// recordPlanTrace attaches the Figure-4 candidate curve and the chosen
// plan to the tracer's current span.
func recordPlanTrace(tr *trace.Tracer, best *Plan, candidates []Candidate, sampler *incrementalSampler, step int) {
	if !tr.Enabled() {
		return
	}
	pts := make([]trace.CandidatePoint, len(candidates))
	for i, c := range candidates {
		pts[i] = trace.CandidatePoint{
			PartSize:    c.PartSize,
			Csample:     c.Csample,
			Cjoin:       c.Cjoin,
			CachePaging: c.CachePaging,
			Chosen:      best != nil && c.PartSize == best.PartSize,
		}
	}
	tr.SetAttr(trace.CandidatesAttr, pts)
	tr.SetAttr("candidateStep", step)
	strategy := "random"
	if sampler.scanned {
		strategy = "scan"
	}
	tr.SetAttr("samplerStrategy", strategy)
	tr.SetAttr("samplerTopUps", sampler.topUps)
	tr.SetAttr("samplerSpentCost", sampler.spent)
	if best != nil {
		tr.SetAttr("partSize", best.PartSize)
		tr.SetAttr("errorSize", best.ErrorSize)
		tr.SetAttr("numPartitions", best.Partitioning.N())
		tr.SetAttr("samplesDrawn", best.SamplesDrawn)
		tr.SetAttr("csampleEst", best.Csample)
		tr.SetAttr("cjoinEst", best.Cjoin)
	}
}
